//! The SST pipeline model: ahead strand, deferred strand, epochs.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use sst_isa::{Inst, Program, Reg, SnapError, SnapReader, SnapWriter, NUM_REGS};
use sst_mem::{AccessKind, Cycle, MemBus};
use sst_obs::{DeferCause, Event, HostTimes, Phase, PhaseTable, Stage, TraceBuf};
use sst_uarch::{
    execute, extend_load, mem_addr, Checkpoint, Commit, Core, DeferredQueue, DqEntry,
    DrainedStore, FetchedInst, ForwardResult, Frontend, LeakageSummary, RegImage, Seq,
    SquashCounts, StoreBuffer, StoreEntry, TaintState,
};

use crate::{SstConfig, SstStats};

/// One speculative epoch: the instructions executed under one checkpoint.
struct Epoch {
    ckpt: Checkpoint,
    /// Last sequence number belonging to this epoch; `None` while the epoch
    /// is still open (the ahead strand is appending to it).
    end_seq: Option<Seq>,
    /// Commit records of this epoch's completed instructions (unsorted;
    /// sorted by seq at commit time).
    log: Vec<Commit>,
    /// For scout mode: the cycle the originating miss returns (rollback
    /// point).
    cause_ready: Cycle,
}

/// Why the ahead strand cannot use its slot-0 issue slot (the stall
/// counter `tick` charges once per fully idle cycle), plus the classified
/// wake cycle. Shared by [`Core::next_event_cycle`] and [`Core::skip_to`]
/// so the two always agree.
enum AheadStall {
    /// Decode queue empty; refilled only by fetch.
    Frontend,
    /// `halt` at the head with speculation outstanding.
    HaltWait,
    /// Head's non-NT sources not timing-ready yet.
    Operand,
    /// Confidence gate holding back a shaky deferred branch.
    LowConf,
    /// Deferred queue full; drained only by replay.
    DqFull,
    /// Store buffer full; drained only by replay/commit.
    StbFull,
    /// The head could issue (or defer) this cycle — no skip is safe.
    None,
}

enum ReplayOutcome {
    /// Entry executed and removed.
    Done,
    /// Entry must stay deferred (data still outstanding / ordering).
    Stuck,
    /// Deferred control misprediction: the epoch failed.
    Fail,
    /// Memory port exhausted; stop replaying this cycle.
    PortFull,
}

/// A multiplicative hasher for sequence-number keys. The produced-value
/// table is probed several times per examined DQ entry, every replay
/// cycle; SipHash is measurable there, and sequence numbers need no
/// DoS resistance (they are internal, dense, and monotonic).
#[derive(Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        // Fibonacci hashing: one multiply spreads dense keys across the
        // high bits, which is where hashbrown takes its control bytes.
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SeqMap<V> = HashMap<Seq, V, BuildHasherDefault<SeqHasher>>;

/// Serializes every [`SstStats`] counter in declaration order.
fn put_stats(w: &mut SnapWriter, s: &SstStats) {
    for v in [
        s.episodes,
        s.epochs_committed,
        s.deferred,
        s.replayed,
        s.redeferred,
        s.fail_branch,
        s.scout_rollbacks,
        s.overlapped_misses,
        s.defer_nt_source,
        s.defer_store_order,
        s.defer_forward_miss,
        s.defer_cache_miss,
        s.stall_frontend,
        s.stall_operand,
        s.stall_dq_full,
        s.stall_stb_full,
        s.stall_ea_replay,
        s.stall_halt_wait,
        s.stall_port,
        s.stall_lowconf,
        s.ahead_issued,
        s.replay_issued,
        s.mispredicts,
    ] {
        w.put_u64(v);
    }
}

/// Reads counters written by [`put_stats`].
fn take_stats(r: &mut SnapReader<'_>) -> Result<SstStats, SnapError> {
    let mut s = SstStats::default();
    for slot in [
        &mut s.episodes,
        &mut s.epochs_committed,
        &mut s.deferred,
        &mut s.replayed,
        &mut s.redeferred,
        &mut s.fail_branch,
        &mut s.scout_rollbacks,
        &mut s.overlapped_misses,
        &mut s.defer_nt_source,
        &mut s.defer_store_order,
        &mut s.defer_forward_miss,
        &mut s.defer_cache_miss,
        &mut s.stall_frontend,
        &mut s.stall_operand,
        &mut s.stall_dq_full,
        &mut s.stall_stb_full,
        &mut s.stall_ea_replay,
        &mut s.stall_halt_wait,
        &mut s.stall_port,
        &mut s.stall_lowconf,
        &mut s.ahead_issued,
        &mut s.replay_issued,
        &mut s.mispredicts,
    ] {
        *slot = r.take_u64()?;
    }
    Ok(s)
}

/// The scout / execute-ahead / SST core.
///
/// See the [crate documentation](crate) for the model summary, and
/// [`SstConfig`] for the design points.
pub struct SstCore {
    cfg: SstConfig,
    id: usize,
    frontend: Frontend,
    /// Live speculative register state (the ahead strand's view).
    spec: RegImage,
    epochs: VecDeque<Epoch>,
    dq: DeferredQueue,
    stb: StoreBuffer,
    /// Values produced by replayed deferred instructions, keyed by producer
    /// sequence: (value, ready cycle).
    replay_vals: SeqMap<(u64, Cycle)>,
    seq: Seq,
    cycle: Cycle,
    halted: bool,
    commits: Vec<Commit>,
    /// Next cycle at which a replay scan could find work.
    replay_check_at: Cycle,
    /// Active replay pass: sequence number of the next DQ entry to
    /// examine, tagged with the DQ generation the pass started under.
    /// `None` when no pass is in progress; a generation mismatch (the DQ
    /// was squashed mid-pass) restarts the pass from the oldest entry.
    replay_cursor: Option<(Seq, u64)>,
    /// Reusable commit-drain buffer (avoids a Vec per committed epoch).
    drain_buf: Vec<DrainedStore>,
    /// Forward-progress guard: after a rollback, the next deferrable miss
    /// executes in-order (no new episode) so that at least one miss is
    /// architecturally consumed per rollback. Cleared at the next commit.
    no_defer: bool,
    /// Cycle of the last observable progress (watchdog).
    last_progress: Cycle,
    /// Per-phase cycle table (always on: one array add per tick). Rows
    /// sum exactly to `cycle`, however the clock advanced.
    phase_cycles: PhaseTable,
    /// Typed event sink ([`SstConfig::trace`] or `Core::set_trace`);
    /// `None` when tracing is off. Record-only — see the config flag's
    /// byte-identity contract. Replaces the old `SST_TRACE` string ring
    /// (and its racy per-core env read); [`SstCore::dump_debug`] prints
    /// its tail on a wedge.
    tracebuf: Option<Box<TraceBuf>>,
    /// Host self-profiling accumulator (`Core::set_host_prof`); `None`
    /// when profiling is off. Record-only, like the trace sink.
    prof: Option<Box<HostTimes>>,
    /// Speculation-taint tracker ([`SstConfig::taint`]); `None` when the
    /// layer is disabled. Purely observational — see the config flag's
    /// byte-identity contract.
    taint: Option<Box<TaintState>>,
    /// Statistics.
    pub stats: SstStats,
}

impl SstCore {
    /// Creates a core with index `id` starting at `program.entry`. The
    /// caller loads the program image into the core's memory port.
    pub fn new(cfg: SstConfig, id: usize, program: &Program) -> SstCore {
        assert!(cfg.checkpoints >= 1, "need at least one checkpoint");
        SstCore {
            frontend: Frontend::new(cfg.frontend, program),
            dq: DeferredQueue::new(cfg.dq_entries),
            stb: StoreBuffer::new(cfg.stb_entries),
            taint: cfg.taint.then(|| Box::new(TaintState::new())),
            tracebuf: cfg.trace.then(|| Box::new(TraceBuf::new())),
            cfg,
            id,
            spec: RegImage::new(),
            epochs: VecDeque::new(),
            replay_vals: SeqMap::default(),
            seq: 0,
            cycle: 0,
            halted: false,
            commits: Vec::new(),
            replay_check_at: Cycle::MAX,
            replay_cursor: None,
            drain_buf: Vec::new(),
            no_defer: false,
            last_progress: 0,
            phase_cycles: PhaseTable::new(),
            prof: None,
            stats: SstStats::default(),
        }
    }

    /// Read-only view of the speculative register image (tests).
    pub fn regs(&self) -> &RegImage {
        &self.spec
    }

    /// The frontend (prediction statistics).
    pub fn frontend(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    /// Deferred-queue high-water mark.
    pub fn dq_high_water(&self) -> usize {
        self.dq.high_water
    }

    /// Store-buffer high-water mark.
    pub fn stb_high_water(&self) -> usize {
        self.stb.high_water
    }

    /// Store-buffer forwarding count.
    pub fn stb_forwards(&self) -> u64 {
        self.stb.forwards
    }

    /// Dumps internal state to stderr (debugging aid for wedge reports).
    #[doc(hidden)]
    pub fn dump_debug(&self) {
        eprintln!(
            "cycle={} seq={} epochs={:?} dq_len={} stb_len={} check_at={:?} cursor={:?} vals={}",
            self.cycle,
            self.seq,
            self.epochs
                .iter()
                .map(|e| (e.ckpt.start_seq, e.end_seq))
                .collect::<Vec<_>>(),
            self.dq.len(),
            self.stb.len(),
            self.replay_check_at,
            self.replay_cursor,
            self.replay_vals.len()
        );
        for e in self.dq.iter().take(8) {
            eprintln!(
                "  dq seq={} pc={:#x} {:?} cap={:?} prod={:?} data_ready={:?} ready_now={}",
                e.seq, e.pc, e.inst, e.captured, e.producers, e.data_ready_at,
                self.entry_ready(e, self.cycle)
            );
        }
        for e in self.stb.iter().take(8) {
            eprintln!("  stb {:?}", e);
        }
        if let Some(tb) = &self.tracebuf {
            for e in tb.tail(64) {
                eprintln!("  trace {e:?}");
            }
        } else {
            eprintln!("  (run with tracing enabled — SstConfig::trace or sst-run trace — for the event tail)");
        }
    }

    // ---------------------------------------------------------------- helpers

    /// Records a typed event iff tracing is on (one discriminant test
    /// when off — the event-sink contract).
    #[inline]
    fn emit(&mut self, e: Event) {
        if let Some(tb) = self.tracebuf.as_mut() {
            tb.push(e);
        }
    }

    fn in_speculation(&self) -> bool {
        !self.epochs.is_empty()
    }

    /// The phase this core occupies at cycle `now`, classified purely
    /// from current state so that `tick` and `skip_to` agree: a vouched
    /// skip window is by definition state-preserving, so every cycle in
    /// it belongs to the phase observed at its start.
    fn phase_at(&self, now: Cycle) -> Phase {
        if self.epochs.is_empty() {
            Phase::Normal
        } else if !self.cfg.retain_results {
            Phase::Scout
        } else if self.replay_cursor.is_some()
            || now >= self.replay_check_at
            || self.ea_replay_suspended()
        {
            Phase::Replay
        } else {
            Phase::Ea
        }
    }

    /// Credits `n` cycles starting at `now` to the current phase (and
    /// the trace's phase track, when tracing).
    fn account_phase(&mut self, now: Cycle, n: u64) {
        let ph = self.phase_at(now);
        self.phase_cycles.add(ph, n);
        if let Some(tb) = self.tracebuf.as_mut() {
            tb.set_phase(ph, now);
        }
    }

    // ------------------------------------------------------------ taint hooks
    //
    // All four hooks compile to a single `Option` discriminant test when
    // the layer is off, and none of them touches timing state when it is
    // on — the taint equivalence test holds runs byte-identical either
    // way.

    /// A speculative demand (load/store) access by `seq` touched `addr`'s
    /// line and fed the prefetcher's training path.
    fn taint_demand(&mut self, seq: Seq, addr: u64, mem: &MemBus) {
        if let Some(t) = self.taint.as_mut() {
            t.note_line(seq, mem.block_of(addr));
            t.note_training(seq);
        }
    }

    /// A speculative prefetch-kind access (store warm, prefetch inst) by
    /// `seq` touched `addr`'s line.
    fn taint_line(&mut self, seq: Seq, addr: u64, mem: &MemBus) {
        if let Some(t) = self.taint.as_mut() {
            t.note_line(seq, mem.block_of(addr));
        }
    }

    /// A speculative instruction `seq` updated the branch predictor.
    fn taint_predictor(&mut self, seq: Seq) {
        if let Some(t) = self.taint.as_mut() {
            t.note_predictor(seq);
        }
    }

    /// An architectural (non-speculative) access demanded `addr`'s line:
    /// if a squashed speculation had leaked it, the line is legitimate
    /// after all.
    fn taint_arch(&mut self, addr: u64, mem: &MemBus) {
        if let Some(t) = self.taint.as_mut() {
            t.note_architectural(mem.block_of(addr));
        }
    }

    /// The taint tracker, when enabled (tests and the leakage harness).
    pub fn taint_state(&self) -> Option<&TaintState> {
        self.taint.as_deref()
    }

    /// Is the deferred entry executable now (all inputs arrived)?
    fn entry_ready(&self, e: &DqEntry, now: Cycle) -> bool {
        if let Some(t) = e.data_ready_at {
            if t > now {
                return false;
            }
        }
        for i in 0..2 {
            if e.captured[i].is_some() {
                continue;
            }
            if let Some(p) = e.producers[i] {
                match self.replay_vals.get(&p) {
                    Some(&(_, ready)) if ready <= now => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Source values of a deferred entry (must be `entry_ready`).
    fn entry_sources(&self, e: &DqEntry) -> (u64, u64) {
        let get = |i: usize| -> u64 {
            if let Some(v) = e.captured[i] {
                v
            } else if let Some(p) = e.producers[i] {
                self.replay_vals[&p].0
            } else {
                0
            }
        };
        (get(0), get(1))
    }

    /// Records a finished instruction into the right commit stream.
    fn log_commit(&mut self, c: Commit) {
        if let Some(ep) = self.epochs.back_mut() {
            ep.log.push(c);
        } else {
            // An architectural commit: the post-rollback progress guard is
            // satisfied.
            self.no_defer = false;
            self.commits.push(c);
        }
        self.last_progress = self.cycle;
    }

    /// Index of the epoch owning sequence number `seq`.
    fn epoch_of(&self, seq: Seq) -> usize {
        self.epochs
            .iter()
            .position(|e| {
                seq >= e.ckpt.start_seq && e.end_seq.map_or(true, |end| seq <= end)
            })
            .expect("every speculative seq belongs to an epoch")
    }

    /// Like [`SstCore::log_commit`] but into the epoch owning `c.seq`
    /// (replayed instructions may belong to any live epoch).
    fn log_commit_deferred(&mut self, c: Commit) {
        let idx = self.epoch_of(c.seq);
        self.epochs[idx].log.push(c);
        self.last_progress = self.cycle;
    }

    /// Delivers a replayed result: the produced-value table, the live
    /// speculative image, and every younger checkpoint image.
    fn merge_result(&mut self, rd: Option<Reg>, value: u64, writer: Seq, ready: Cycle) {
        self.replay_vals.insert(writer, (value, ready));
        if let Some(rd) = rd {
            self.spec.merge(rd, value, writer, ready);
            // The writer-tag rule makes this precise: only images whose NT
            // owner matches `writer` (i.e. checkpoints younger than the
            // producing instruction) accept the merge.
            for ep in self.epochs.iter_mut() {
                ep.ckpt.image.merge(rd, value, writer, ready);
            }
        }
    }

    // ------------------------------------------------------------- commit

    fn try_commit(&mut self, now: Cycle, mem: &mut MemBus) {
        if !self.cfg.retain_results {
            return; // scout epochs end in rollback, never commit
        }
        while let Some(oldest) = self.epochs.front() {
            let bound = oldest.end_seq.unwrap_or(self.seq);
            // Any DQ entry still owned by this epoch?
            if self.dq.first_seq().is_some_and(|s| s <= bound) {
                break;
            }
            let mut ep = self.epochs.pop_front().expect("checked front");
            ep.log.sort_by_key(|c| c.seq);
            debug_assert!(
                ep.log
                    .windows(2)
                    .all(|w| w[1].seq == w[0].seq + 1),
                "epoch log must be a dense program-order range"
            );
            let merged = ep.log.len() as u32;
            self.commits.append(&mut ep.log);
            self.emit(Event::CkptCommit { at: now, merged });
            self.drain_buf.clear();
            self.stb.drain_through_into(bound, &mut self.drain_buf);
            for d in &self.drain_buf {
                mem.access(now, AccessKind::Store, d.addr);
                mem.write(d.addr, d.bytes, d.value);
            }
            self.stats.epochs_committed += 1;
            self.last_progress = now;
            self.replay_check_at = self.replay_check_at.min(now + 1);
            if let Some(t) = self.taint.as_mut() {
                // The epoch's writes are architectural now; its lines
                // also legitimize any earlier leak of the same blocks.
                t.commit_through(bound);
            }
            if self.epochs.is_empty() {
                debug_assert_eq!(self.spec.nt_count(), 0, "commit to normal leaves no NT");
                debug_assert!(
                    self.taint.as_ref().map_or(true, |t| t.pending_lines() == 0),
                    "commit to normal leaves no pending speculative taint"
                );
                self.replay_vals.clear();
                self.replay_check_at = Cycle::MAX;
            }
        }
    }

    // ------------------------------------------------------------ rollback

    /// Rolls back to the checkpoint of `epochs[idx]`, squashing that epoch
    /// and everything younger. `idx == 0` is a full rollback. `mem` is
    /// only read (non-mutating residency probes) and only when the taint
    /// layer is enabled.
    fn rollback_to(&mut self, idx: usize, now: Cycle, scout: bool, mem: &mut MemBus) {
        let ck = self.epochs[idx].ckpt.clone();
        self.emit(Event::CkptRollback {
            at: now,
            scout,
            squashed: (self.seq + 1).saturating_sub(ck.start_seq) as u32,
        });
        // Structure-squash counts for the taint sweep, taken before the
        // squash destroys the evidence.
        let squash_counts = self.taint.is_some().then(|| SquashCounts {
            nt: self.spec.nt_owned_since(ck.start_seq) as u64,
            dq: self.dq.iter().filter(|e| e.seq >= ck.start_seq).count() as u64,
            stb: self.stb.iter().filter(|e| e.seq >= ck.start_seq).count() as u64,
        });
        // Results of still-older epochs may not have merged into this
        // image yet (their entries are still deferred); those NT registers
        // remain correctly NT after the restore, still owned by live
        // older-epoch producers.
        debug_assert!(
            idx > 0 || ck.image.nt_count() == 0,
            "a full rollback restores a fully merged image"
        );
        self.spec = ck.image;
        self.seq = ck.start_seq - 1;
        self.dq.squash_from(ck.start_seq);
        self.stb.squash_from(ck.start_seq);
        self.replay_vals.retain(|&sq, _| sq < ck.start_seq);
        self.epochs.truncate(idx);
        // The surviving youngest epoch is open again (its closing point
        // was the squashed checkpoint).
        if let Some(e) = self.epochs.back_mut() {
            e.end_seq = None;
        }
        self.replay_check_at = if self.dq.is_empty() {
            Cycle::MAX
        } else {
            now + 1
        };
        self.replay_cursor = None;
        self.frontend.redirect(now + 1, ck.pc);
        if let (Some(t), Some(counts)) = (self.taint.as_mut(), squash_counts) {
            t.sweep(ck.start_seq, now, scout, mem, counts);
        }
        if scout {
            self.stats.scout_rollbacks += 1;
        } else {
            self.stats.fail_branch += 1;
        }
        self.no_defer = true;
        self.last_progress = now;
    }

    // ------------------------------------------------------------- replay

    /// The earliest cycle the entry could become executable, if that time
    /// is knowable (producers already replayed / fill in flight).
    fn entry_ready_when(&self, e: &DqEntry) -> Option<Cycle> {
        let mut when = e.data_ready_at.unwrap_or(0);
        for i in 0..2 {
            if e.captured[i].is_some() {
                continue;
            }
            if let Some(p) = e.producers[i] {
                match self.replay_vals.get(&p) {
                    Some(&(_, ready)) => when = when.max(ready),
                    None => return None, // producer itself still deferred
                }
            }
        }
        Some(when)
    }

    /// Runs the deferred strand for this cycle: an in-order walk of the
    /// oldest epoch's DQ segment, matching ROCK's sequential replay.
    /// Examined entries consume issue slots whether they execute or
    /// re-defer; an entry whose inputs land within a bypass window stalls
    /// the strand briefly (back-to-back dependent replay, as real
    /// pipelines bypass). Returns the issue slots consumed.
    fn replay(
        &mut self,
        now: Cycle,
        mem: &mut MemBus,
        slots: usize,
        mem_ops: &mut usize,
    ) -> usize {
        // An entry whose inputs land within a bypass-distance window is
        // worth a short in-place stall (back-to-back dependent replay);
        // anything longer re-defers, as in ROCK.
        let stall_window: Cycle = self.cfg.bypass_stall_window;
        // The deferred strand walks the entire DQ: entries of any live
        // epoch may replay as soon as their inputs arrive (commit order is
        // still enforced per epoch by try_commit).
        let bound = Seq::MAX;

        // Start a pass if none is active. The cursor carries the DQ
        // generation it was taken under: a mid-pass squash (rollback)
        // reshuffles the queue, so a surviving cursor from an older
        // generation is stale and the pass restarts at the oldest entry.
        let cur_gen = self.dq.generation();
        let mut cursor = match self.replay_cursor {
            Some((c, g)) if g == cur_gen => c,
            _ => 0,
        };

        // The DQ is seq-sorted, so the pass position is an index walked
        // forward, located once per call by binary search — not a linear
        // re-scan per examined entry (that made a full pass O(n^2) and
        // dominated whole-simulation wall clock on deferred-heavy runs).
        let mut idx = self.dq.position(cursor);

        // Executing an entry occupies an issue slot; skipping a not-ready
        // entry is free (a ready-bit scan), so a pass only pays for the
        // work it actually does plus short bypass stalls.
        let mut used = 0;
        // Trace-only tallies for the pass-completion marker.
        let mut pass_exec: u32 = 0;
        let mut pass_stuck: u32 = 0;
        while used < slots {
            // Next entry at or after the cursor within the epoch segment.
            // Examined by reference; the entry is only copied out (for the
            // `&mut self` replay below) once it is known to be executable —
            // a pass over a full DQ of waiting entries copies nothing.
            enum Step {
                PassDone,
                Exec,
                NotReady { seq: Seq, when: Option<Cycle> },
            }
            // One readiness computation per examined entry: ready is
            // exactly "knowable and already past" (`entry_ready` and
            // `entry_ready_when` consult the same producer table).
            let step = match self.dq.get(idx).filter(|e| e.seq <= bound) {
                None => Step::PassDone,
                Some(e) => match self.entry_ready_when(e) {
                    Some(when) if when <= now => Step::Exec,
                    when => Step::NotReady { seq: e.seq, when },
                },
            };

            match step {
                Step::PassDone => {
                    // Pass complete: sleep until the earliest knowable
                    // enabling event of any remaining entry. Entries
                    // re-deferred early in a long pass may have become
                    // executable meanwhile, so the wake must consult each
                    // entry's own readiness time (not just future-dated
                    // arrivals). Entries blocked behind an unresolved
                    // older store are excluded: they are input-ready with
                    // no wake time of their own, and the only event that
                    // can unstick them — that store resolving — happens
                    // inside a replay pass this wake already schedules
                    // (the store's own readiness, or its data arrival, is
                    // accounted by an unblocked entry or the data heap).
                    // Before this exclusion they pinned `replay_check_at`
                    // to `now + 1`, forcing an O(n) empty pass every cycle
                    // for the entire miss latency.
                    self.emit(Event::ReplayPass {
                        at: now,
                        executed: pass_exec,
                        redeferred: pass_stuck,
                    });
                    self.replay_cursor = None;
                    let wake_data = self.dq.next_data_ready().unwrap_or(Cycle::MAX);
                    let wake_entries = self
                        .dq
                        .iter_blocked()
                        .filter(|&(e, blocked)| !blocked && e.seq <= bound)
                        .filter_map(|(e, _)| self.entry_ready_when(e))
                        .map(|w| w.max(now + 1))
                        .min()
                        .unwrap_or(Cycle::MAX);
                    self.replay_check_at = wake_data.min(wake_entries);
                    return used;
                }
                Step::Exec => {
                    let e = *self.dq.get(idx).expect("examined above");
                    used += 1;
                    self.stats.replay_issued += 1;
                    match self.replay_one(&e, now, mem, mem_ops) {
                        ReplayOutcome::Done => {
                            self.dq.remove_seq(e.seq);
                            self.stats.replayed += 1;
                            self.last_progress = now;
                            pass_exec += 1;
                            cursor = e.seq + 1;
                            // `idx` now points at the entry after the
                            // removed one; leave it in place.
                        }
                        ReplayOutcome::Stuck => {
                            // Re-deferred (missed again) or ordering:
                            // shuffle past it.
                            pass_stuck += 1;
                            cursor = e.seq + 1;
                            idx += 1;
                        }
                        ReplayOutcome::Fail => {
                            let ep_idx = self.epoch_of(e.seq);
                            self.rollback_to(ep_idx, now, false, mem);
                            return used;
                        }
                        ReplayOutcome::PortFull => break,
                    }
                }
                Step::NotReady { seq, when } => match when {
                    Some(when) if when <= now + stall_window => {
                        // Inputs land imminently: the strand stalls here
                        // (bypass), occupying a slot.
                        let _ = seq;
                        used += 1;
                        break;
                    }
                    _ => {
                        // Inputs are far off: re-defer (the entry stays in
                        // place; the next pass re-examines it).
                        cursor = seq + 1;
                        idx += 1;
                    }
                },
            }
        }

        self.replay_cursor = Some((cursor, cur_gen));
        self.replay_check_at = now + 1; // pass still in progress
        used
    }

    fn replay_one(
        &mut self,
        e: &DqEntry,
        now: Cycle,
        mem: &mut MemBus,
        mem_ops: &mut usize,
    ) -> ReplayOutcome {
        let (s1, s2) = self.entry_sources(e);
        match e.inst {
            Inst::Load {
                width, signed, rd, ..
            } => {
                let addr = mem_addr(e.inst, s1);
                let bytes = width.bytes();
                let Some(raw) = self.stb.read_overlay(e.seq, addr, bytes, mem.mem()) else {
                    // An older store is still unresolved. The load is
                    // input-ready but can make no progress until some
                    // store resolves, so mark it blocked: the pass-done
                    // wake skips it instead of re-polling every cycle.
                    self.dq.mark_blocked(e.seq);
                    return ReplayOutcome::Stuck;
                };
                let ready = if e.data_ready_at.is_some() {
                    // A fill was already initiated for this load (at defer
                    // time, or at an earlier replay attempt) and has now
                    // returned: consume it via fill forwarding — no new
                    // cache access, so pathological conflict evictions
                    // cannot livelock the replay (entry_ready gated on the
                    // arrival cycle).
                    now + 2
                } else {
                    // First access for this load (its address was unknown
                    // at defer time).
                    if *mem_ops >= self.cfg.dcache_ports {
                        return ReplayOutcome::PortFull;
                    }
                    *mem_ops += 1;
                    let out = mem.access_pc(now, AccessKind::Load, addr, e.pc);
                    self.taint_demand(e.seq, addr, mem);
                    if out.level == sst_mem::HitLevel::Mem
                        && out.latency(now) > self.cfg.defer_threshold
                    {
                        // Missed off-chip: stay deferred until this fill
                        // returns.
                        self.dq.set_data_ready(e.seq, out.ready_at);
                        self.replay_check_at = self.replay_check_at.min(out.ready_at);
                        self.stats.redeferred += 1;
                        self.emit(Event::Redefer { at: now });
                        return ReplayOutcome::Stuck;
                    }
                    out.ready_at.max(now + 1)
                };
                let value = extend_load(width, signed, raw);
                self.merge_result(
                    if rd.is_zero() { None } else { Some(rd) },
                    value,
                    e.seq,
                    ready,
                );
                self.log_commit_deferred(Commit {
                    seq: e.seq,
                    pc: e.pc,
                    inst: e.inst,
                    reg_write: if rd.is_zero() { None } else { Some((rd, value)) },
                    store: None,
                    at: now,
                });
                ReplayOutcome::Done
            }
            Inst::Store { width, .. } => {
                let addr = mem_addr(e.inst, s1);
                let value = s2;
                self.stb.resolve(e.seq, addr, value);
                // A resolved store may unstick ordering-blocked loads
                // (they are all younger, so this pass re-examines them).
                self.dq.clear_blocked();
                // Warm the line for the eventual commit-time write.
                mem.access_pc(now, AccessKind::Prefetch, addr, e.pc);
                self.taint_line(e.seq, addr, mem);
                self.log_commit_deferred(Commit {
                    seq: e.seq,
                    pc: e.pc,
                    inst: e.inst,
                    reg_write: None,
                    store: Some((addr, width.bytes(), value)),
                    at: now,
                });
                ReplayOutcome::Done
            }
            Inst::Prefetch { .. } => {
                let addr = mem_addr(e.inst, s1);
                mem.access_pc(now, AccessKind::Prefetch, addr, e.pc);
                self.taint_line(e.seq, addr, mem);
                self.log_commit_deferred(Commit {
                    seq: e.seq,
                    pc: e.pc,
                    inst: e.inst,
                    reg_write: None,
                    store: None,
                    at: now,
                });
                ReplayOutcome::Done
            }
            inst => {
                let out = execute(inst, s1, s2, e.pc);
                if inst.is_control() {
                    let predicted = e.pred_next_pc.expect("deferred control records its path");
                    self.frontend.resolve(e.pc, inst, out.taken, out.next_pc);
                    self.taint_predictor(e.seq);
                    if out.next_pc != predicted {
                        // An unpredicted indirect that blocked fetch is a
                        // late resolution, not a misprediction: nothing ran
                        // past it.
                        let blocked_fetch =
                            self.frontend.waiting_indirect() && self.seq == e.seq;
                        if !blocked_fetch {
                            // Typed successor of the old SST_TRACE_FAILS
                            // eprintln: the failing control transfer is an
                            // event, inspectable in the exported trace.
                            self.emit(Event::ReplayFail { at: now, seq: e.seq });
                            return ReplayOutcome::Fail;
                        }
                        self.frontend.redirect(now + 1, out.next_pc);
                    }
                }
                let ready = now + self.cfg.latency.of(inst);
                let mut reg_write = None;
                if let (Some(v), Some(rd)) = (out.value, inst.dest()) {
                    self.merge_result(Some(rd), v, e.seq, ready);
                    reg_write = Some((rd, v));
                } else if let Some(v) = out.value {
                    // Destination is x0: still record the produced value so
                    // that dependents (there are none for x0) stay sound.
                    self.replay_vals.insert(e.seq, (v, ready));
                } else {
                    self.replay_vals.insert(e.seq, (0, ready));
                }
                self.log_commit_deferred(Commit {
                    seq: e.seq,
                    pc: e.pc,
                    inst,
                    reg_write,
                    store: None,
                    at: now,
                });
                ReplayOutcome::Done
            }
        }
    }

    /// Mirrors the slot-0 decision tree of [`SstCore::ahead`] without side
    /// effects: when would the ahead strand next act, and which stall
    /// counter does each idle cycle charge meanwhile? `Cycle::MAX` wake
    /// values are stalls released only by fetch, replay, commit, or
    /// rollback — all covered by the other [`Core::next_event_cycle`]
    /// terms.
    fn ahead_wake(&self, now: Cycle) -> (Cycle, AheadStall) {
        let Some(f) = self.frontend.peek() else {
            return (Cycle::MAX, AheadStall::Frontend);
        };
        let inst = f.inst;
        if inst == Inst::Halt {
            return if self.in_speculation() {
                (Cycle::MAX, AheadStall::HaltWait)
            } else {
                (now, AheadStall::None)
            };
        }
        let sources = inst.sources();
        let ready_needed = sources
            .iter()
            .flatten()
            .filter(|r| !self.spec.is_nt(**r))
            .map(|r| self.spec.ready_at(*r))
            .max()
            .unwrap_or(0);
        if ready_needed > now {
            return (ready_needed, AheadStall::Operand);
        }
        if self.spec.any_nt(sources) {
            if self.cfg.confidence_gate
                && self.cfg.retain_results
                && inst.is_control()
                && !f.pred_confident
            {
                return (Cycle::MAX, AheadStall::LowConf);
            }
            if self.dq.is_full() {
                return (Cycle::MAX, AheadStall::DqFull);
            }
            if inst.is_store() && self.stb.is_full() {
                return (Cycle::MAX, AheadStall::StbFull);
            }
            return (now, AheadStall::None);
        }
        if inst.is_store() && self.in_speculation() && self.stb.is_full() {
            return (Cycle::MAX, AheadStall::StbFull);
        }
        (now, AheadStall::None)
    }

    // -------------------------------------------------------- speculation mgmt

    /// Decides what the deferred strand does this cycle. Returns
    /// `(slots_for_ahead, ahead_suspended)`.
    fn manage_speculation(
        &mut self,
        now: Cycle,
        mem: &mut MemBus,
        mem_ops: &mut usize,
    ) -> (usize, bool) {
        let width = self.cfg.width;
        let Some(oldest) = self.epochs.front() else {
            return (width, false);
        };
        let cause_ready = oldest.cause_ready;
        let oldest_open = oldest.end_seq.is_none();

        if !self.cfg.retain_results {
            // Scout: run until the originating miss returns, then restart.
            if now >= cause_ready {
                self.rollback_to(0, now, true, mem);
            }
            return (width, false);
        }
        let work = now >= self.replay_check_at;

        // Ordering-blocked entries don't schedule replay passes (nothing
        // can progress until the blocking store resolves), but they are
        // pending deferred work all the same: SST closes the open epoch
        // promptly so the deferred strand can drain it concurrently with
        // the ahead strand instead of waiting for the next data return.
        if oldest_open && (work || self.dq.any_blocked()) {
            // The (single) open epoch has replayable work. With a free
            // checkpoint we close it and keep the ahead strand running
            // (SST); otherwise the ahead strand suspends (EA).
            if self.epochs.len() < self.cfg.checkpoints {
                if let Some(pc) = self.frontend.resume_pc() {
                    let end = self.seq;
                    self.epochs.front_mut().expect("nonempty").end_seq = Some(end);
                    let ck = Checkpoint::take(&self.spec, pc, self.seq + 1, now);
                    self.epochs.push_back(Epoch {
                        ckpt: ck,
                        end_seq: None,
                        log: Vec::new(),
                        cause_ready: 0,
                    });
                    let live = self.epochs.len() as u32;
                    self.emit(Event::CkptTake { at: now, live });
                }
            }
        }

        let oldest_open = self
            .epochs
            .front()
            .map(|e| e.end_seq.is_none())
            .unwrap_or(true);

        if !oldest_open {
            // SST: deferred strand replays the closed epoch; ahead keeps
            // whatever issue slots remain.
            if now >= self.replay_check_at {
                let used = self.replay(now, mem, width, mem_ops);
                return (width.saturating_sub(used), false);
            }
            return (width, false);
        }

        // EA: replay the open epoch with the ahead strand suspended.
        if work {
            let used = self.replay(now, mem, width, mem_ops);
            if used > 0 {
                self.stats.stall_ea_replay += 1;
                return (0, true);
            }
        }
        if self.dq.any_blocked() {
            // A replay pass is stalled in place on an ordering-blocked
            // load (input-ready, waiting on an unresolved older store).
            // With a single checkpoint the ahead strand shares the
            // pipeline with the stalled deferred strand and suspends with
            // it — exactly the execute-ahead weakness the second
            // checkpoint (SST) removes. `ea_replay_suspended` mirrors the
            // conditions that reach this line; keep them in lockstep.
            self.stats.stall_ea_replay += 1;
            return (0, true);
        }
        (width, false)
    }

    /// `true` when this cycle's `manage_speculation` would suspend the
    /// ahead strand on blocked deferred work (the EA path: an open oldest
    /// epoch it cannot close). Used by `next_event_cycle`/`skip_to` to
    /// vouch and bulk-credit such windows — the only per-cycle effect is
    /// the `stall_ea_replay` counter.
    fn ea_replay_suspended(&self) -> bool {
        self.cfg.retain_results
            && self
                .epochs
                .front()
                .is_some_and(|e| e.end_seq.is_none())
            && self.dq.any_blocked()
            && !(self.epochs.len() < self.cfg.checkpoints
                && self.frontend.resume_pc().is_some())
    }

    // ------------------------------------------------------------- ahead strand

    /// Builds the defer record for `inst` and pushes it (plus any store
    /// buffer entry), attributing the deferral to `cause` in the
    /// taxonomy counters. Caller has verified capacity.
    fn defer(&mut self, f: &FetchedInst, now: Cycle, data_ready_at: Option<Cycle>, cause: DeferCause) {
        let inst = f.inst;
        let seq = self.seq;
        let sources = inst.sources();
        let mut captured = [None, None];
        let mut producers = [None, None];
        for (i, s) in sources.iter().enumerate() {
            if let Some(r) = s {
                if self.spec.is_nt(*r) {
                    producers[i] = Some(self.spec.slot(*r).writer);
                } else {
                    captured[i] = Some(self.spec.value(*r));
                }
            } else {
                captured[i] = Some(0);
            }
        }

        if let Inst::Store { width, .. } = inst {
            let addr = captured[0].map(|b| mem_addr(inst, b));
            self.stb.push(StoreEntry {
                seq,
                addr,
                bytes: width.bytes(),
                value: captured[1],
            });
        }

        let (predicted_taken, pred_next_pc) = if inst.is_control() {
            (Some(f.pred_taken), Some(f.pred_next_pc))
        } else {
            (None, None)
        };

        self.dq.push(DqEntry {
            seq,
            pc: f.pc,
            inst,
            captured,
            producers,
            predicted_taken,
            pred_next_pc,
            data_ready_at,
        });
        if let Some(d) = data_ready_at {
            self.replay_check_at = self.replay_check_at.min(d);
        }
        if let Some(rd) = inst.dest() {
            self.spec.mark_nt(rd, seq);
        }
        self.stats.deferred += 1;
        match cause {
            DeferCause::NtSource => self.stats.defer_nt_source += 1,
            DeferCause::StoreOrder => self.stats.defer_store_order += 1,
            DeferCause::ForwardMiss => self.stats.defer_forward_miss += 1,
            DeferCause::CacheMiss => self.stats.defer_cache_miss += 1,
        }
        self.emit(Event::Defer { at: now, cause });
    }

    /// Issues ahead-strand instructions. Returns after using `slots` slots
    /// or hitting a stall.
    fn ahead(&mut self, now: Cycle, mem: &mut MemBus, slots: usize, mem_ops: &mut usize) {
        for slot in 0..slots {
            let Some(f) = self.frontend.peek().copied() else {
                if slot == 0 {
                    self.stats.stall_frontend += 1;
                }
                break;
            };
            let inst = f.inst;

            // A halt cannot commit while speculation is outstanding.
            if inst == Inst::Halt {
                if self.in_speculation() {
                    self.stats.stall_halt_wait += 1;
                    break;
                }
                self.frontend.pop();
                self.seq += 1;
                self.commits.push(Commit {
                    seq: self.seq,
                    pc: f.pc,
                    inst,
                    reg_write: None,
                    store: None,
                    at: now,
                });
                self.halted = true;
                self.last_progress = now;
                break;
            }

            let sources = inst.sources();
            let any_nt = self.spec.any_nt(sources);

            // Non-NT sources must be timing-ready (in-order issue).
            let ready_needed = sources
                .iter()
                .flatten()
                .filter(|r| !self.spec.is_nt(**r))
                .map(|r| self.spec.ready_at(*r))
                .max()
                .unwrap_or(0);
            if ready_needed > now {
                if slot == 0 {
                    self.stats.stall_operand += 1;
                }
                break;
            }

            if any_nt {
                // NT source: defer (possible only inside speculation).
                debug_assert!(self.in_speculation(), "NT bits imply an active epoch");
                if self.cfg.confidence_gate
                    && self.cfg.retain_results
                    && inst.is_control()
                    && !f.pred_confident
                {
                    // Confidence gate: don't speculate past a shaky
                    // deferred branch; wait for its inputs instead.
                    self.stats.stall_lowconf += 1;
                    break;
                }
                if self.dq.is_full() {
                    self.stats.stall_dq_full += 1;
                    break;
                }
                if inst.is_store() && self.stb.is_full() {
                    self.stats.stall_stb_full += 1;
                    break;
                }
                self.frontend.pop();
                self.seq += 1;
                self.stats.ahead_issued += 1;
                self.defer(&f, now, None, DeferCause::NtSource);
                continue;
            }

            // All sources available: execute (or latency-defer a miss).
            match inst {
                Inst::Load {
                    width, signed, rd, ..
                } => {
                    let base = sources[0].map_or(0, |r| self.spec.value(r));
                    let addr = mem_addr(inst, base);
                    let bytes = width.bytes();
                    let my_seq = self.seq + 1;

                    if self.in_speculation() && self.stb.unknown_addr_before(my_seq) {
                        // Conservative ordering: an older store's address is
                        // unknown, so this load defers.
                        if self.dq.is_full() {
                            self.stats.stall_dq_full += 1;
                            break;
                        }
                        self.frontend.pop();
                        self.seq += 1;
                        self.stats.ahead_issued += 1;
                        self.defer(&f, now, None, DeferCause::StoreOrder);
                        if let Some(rd) = inst.dest() {
                            // defer() already marked it NT.
                            let _ = rd;
                        }
                        continue;
                    }

                    match self.stb.forward(my_seq, addr, bytes) {
                        ForwardResult::Forward(raw) => {
                            self.frontend.pop();
                            self.seq += 1;
                            self.stats.ahead_issued += 1;
                            let value = extend_load(width, signed, raw);
                            self.spec.write(rd, value, self.seq, now + 2);
                            self.log_commit(Commit {
                                seq: self.seq,
                                pc: f.pc,
                                inst,
                                reg_write: if rd.is_zero() {
                                    None
                                } else {
                                    Some((rd, value))
                                },
                                store: None,
                                at: now,
                            });
                        }
                        ForwardResult::NotThere { .. } | ForwardResult::MustWait => {
                            if self.dq.is_full() {
                                self.stats.stall_dq_full += 1;
                                break;
                            }
                            self.frontend.pop();
                            self.seq += 1;
                            self.stats.ahead_issued += 1;
                            self.defer(&f, now, None, DeferCause::ForwardMiss);
                        }
                        ForwardResult::NoMatch => {
                            if *mem_ops >= self.cfg.dcache_ports {
                                self.stats.stall_port += 1;
                                break;
                            }
                            *mem_ops += 1;
                            let out = mem.access_pc(now, AccessKind::Load, addr, f.pc);
                            // ROCK's defer trigger is the L2-miss *event*:
                            // off-chip accesses defer, on-chip hits (even
                            // queued ones) are waited out. The latency
                            // guard skips deferral for merged misses whose
                            // data is about to arrive anyway.
                            let defer_miss = out.level == sst_mem::HitLevel::Mem
                                && out.latency(now) > self.cfg.defer_threshold
                                && (!self.no_defer || self.in_speculation());
                            // The access above already touched the line,
                            // whether or not the load issues this cycle:
                            // speculative if an epoch is (or is about to
                            // be) live, architectural otherwise.
                            if self.in_speculation() || defer_miss {
                                self.taint_demand(my_seq, addr, mem);
                            } else {
                                self.taint_arch(addr, mem);
                            }
                            if defer_miss {
                                // The paper's trigger: a long-latency miss.
                                if self.dq.is_full() {
                                    self.stats.stall_dq_full += 1;
                                    break;
                                }
                                if !self.in_speculation() {
                                    let ck =
                                        Checkpoint::take(&self.spec, f.pc, my_seq, now);
                                    self.epochs.push_back(Epoch {
                                        ckpt: ck,
                                        end_seq: None,
                                        log: Vec::new(),
                                        cause_ready: out.ready_at,
                                    });
                                    self.stats.episodes += 1;
                                    self.emit(Event::CkptTake { at: now, live: 1 });
                                } else {
                                    self.stats.overlapped_misses += 1;
                                    // Eager checkpointing: anchor a new
                                    // epoch at each deferrable miss while a
                                    // checkpoint is free. This bounds the
                                    // scope of a deferred-branch rollback
                                    // to one miss region instead of the
                                    // whole speculation episode.
                                    if self.cfg.retain_results
                                        && self.epochs.len() < self.cfg.checkpoints
                                    {
                                        self.epochs
                                            .back_mut()
                                            .expect("in speculation")
                                            .end_seq = Some(my_seq - 1);
                                        let ck = Checkpoint::take(
                                            &self.spec,
                                            f.pc,
                                            my_seq,
                                            now,
                                        );
                                        self.epochs.push_back(Epoch {
                                            ckpt: ck,
                                            end_seq: None,
                                            log: Vec::new(),
                                            cause_ready: out.ready_at,
                                        });
                                        let live = self.epochs.len() as u32;
                                        self.emit(Event::CkptTake { at: now, live });
                                    }
                                }
                                self.frontend.pop();
                                self.seq += 1;
                                self.stats.ahead_issued += 1;
                                self.defer(&f, now, Some(out.ready_at), DeferCause::CacheMiss);
                            } else {
                                self.frontend.pop();
                                self.seq += 1;
                                self.stats.ahead_issued += 1;
                                let raw = mem.read(addr, bytes);
                                let value = extend_load(width, signed, raw);
                                self.spec.write(rd, value, self.seq, out.ready_at);
                                self.log_commit(Commit {
                                    seq: self.seq,
                                    pc: f.pc,
                                    inst,
                                    reg_write: if rd.is_zero() {
                                        None
                                    } else {
                                        Some((rd, value))
                                    },
                                    store: None,
                                    at: now,
                                });
                            }
                        }
                    }
                }
                Inst::Store { width, .. } => {
                    let base = sources[0].map_or(0, |r| self.spec.value(r));
                    let data = sources[1].map_or(0, |r| self.spec.value(r));
                    let addr = mem_addr(inst, base);
                    let bytes = width.bytes();
                    if self.in_speculation() {
                        if self.stb.is_full() {
                            self.stats.stall_stb_full += 1;
                            break;
                        }
                        self.frontend.pop();
                        self.seq += 1;
                        self.stats.ahead_issued += 1;
                        self.stb.push(StoreEntry {
                            seq: self.seq,
                            addr: Some(addr),
                            bytes,
                            value: Some(data),
                        });
                        // Warm the line ahead of the commit-time write.
                        mem.access_pc(now, AccessKind::Prefetch, addr, f.pc);
                        self.taint_line(self.seq, addr, mem);
                        self.log_commit(Commit {
                            seq: self.seq,
                            pc: f.pc,
                            inst,
                            reg_write: None,
                            store: Some((addr, bytes, data)),
                            at: now,
                        });
                    } else {
                        if *mem_ops >= self.cfg.dcache_ports {
                            self.stats.stall_port += 1;
                            break;
                        }
                        *mem_ops += 1;
                        self.frontend.pop();
                        self.seq += 1;
                        self.stats.ahead_issued += 1;
                        mem.access_pc(now, AccessKind::Store, addr, f.pc);
                        self.taint_arch(addr, mem);
                        mem.write(addr, bytes, data);
                        self.log_commit(Commit {
                            seq: self.seq,
                            pc: f.pc,
                            inst,
                            reg_write: None,
                            store: Some((addr, bytes, data)),
                            at: now,
                        });
                    }
                }
                Inst::Prefetch { .. } => {
                    let base = sources[0].map_or(0, |r| self.spec.value(r));
                    let addr = mem_addr(inst, base);
                    self.frontend.pop();
                    self.seq += 1;
                    self.stats.ahead_issued += 1;
                    mem.access_pc(now, AccessKind::Prefetch, addr, f.pc);
                    if self.in_speculation() {
                        self.taint_line(self.seq, addr, mem);
                    } else {
                        self.taint_arch(addr, mem);
                    }
                    self.log_commit(Commit {
                        seq: self.seq,
                        pc: f.pc,
                        inst,
                        reg_write: None,
                        store: None,
                        at: now,
                    });
                }
                _ => {
                    let s1 = sources[0].map_or(0, |r| self.spec.value(r));
                    let s2 = sources[1].map_or(0, |r| self.spec.value(r));
                    self.frontend.pop();
                    self.seq += 1;
                    self.stats.ahead_issued += 1;
                    let out = execute(inst, s1, s2, f.pc);
                    let mut reg_write = None;
                    if let (Some(v), Some(rd)) = (out.value, inst.dest()) {
                        self.spec
                            .write(rd, v, self.seq, now + self.cfg.latency.of(inst));
                        reg_write = Some((rd, v));
                    }
                    self.log_commit(Commit {
                        seq: self.seq,
                        pc: f.pc,
                        inst,
                        reg_write,
                        store: None,
                        at: now,
                    });
                    if inst.is_control() {
                        self.frontend.resolve(f.pc, inst, out.taken, out.next_pc);
                        if self.in_speculation() {
                            self.taint_predictor(self.seq);
                        }
                        if out.next_pc != f.pred_next_pc {
                            self.stats.mispredicts += 1;
                            self.frontend.redirect(now + 1, out.next_pc);
                            break;
                        }
                    }
                }
            }
            self.last_progress = now;
        }
    }
}

impl Core for SstCore {
    fn tick(&mut self, mem: &mut MemBus) {
        let now = self.cycle;
        self.cycle += 1;
        self.account_phase(now, 1);
        if self.halted {
            return;
        }
        assert!(
            now.saturating_sub(self.last_progress) < 2_000_000,
            "SST core wedged at cycle {now} (seq {}, dq {}, epochs {}, stb {})",
            self.seq,
            self.dq.len(),
            self.epochs.len(),
            self.stb.len()
        );

        let t0 = HostTimes::start(&self.prof);
        self.frontend.tick(now, mem);
        HostTimes::stop(&mut self.prof, Stage::Fetch, t0);

        let t0 = HostTimes::start(&self.prof);
        self.try_commit(now, mem);

        let mut mem_ops = 0usize;
        let (ahead_slots, _suspended) = self.manage_speculation(now, mem, &mut mem_ops);
        self.try_commit(now, mem);
        HostTimes::stop(&mut self.prof, Stage::Replay, t0);

        let t0 = HostTimes::start(&self.prof);
        if ahead_slots > 0 && !self.halted {
            self.ahead(now, mem, ahead_slots, &mut mem_ops);
        }
        self.try_commit(now, mem);
        HostTimes::stop(&mut self.prof, Stage::Issue, t0);

        if let Some(tb) = self.tracebuf.as_mut() {
            tb.sample_occupancy(now, self.dq.len() as u32, self.stb.len() as u32);
        }
    }

    fn cycle(&self) -> Cycle {
        self.cycle
    }

    fn retired(&self) -> u64 {
        self.seq
    }

    fn halted(&self) -> bool {
        self.halted
    }

    fn drain_commits_into(&mut self, out: &mut Vec<Commit>) {
        out.append(&mut self.commits);
    }

    fn next_event_cycle(&self) -> Cycle {
        let now = self.cycle;
        if self.halted {
            return Cycle::MAX;
        }
        let fetch = self.frontend.next_fetch_cycle(now);
        if fetch <= now {
            // Fetch can proceed this cycle, so no window can be vouched;
            // every other term is >= now, making the min `now`. Bailing
            // here keeps the (pricier) ahead-wake computation off the
            // per-tick path of active phases.
            return now;
        }
        // Deferred-strand / speculation-management wake: a scout episode
        // rolls back when its originating miss returns; SST/EA epochs do
        // replay work (and close/commit/rollback) at `replay_check_at` —
        // the next DQ data-ready arrival or entry-ready time. With
        // `event_wakeup` off, no window is vouched while an epoch is live
        // (the driver ticks cycle by cycle); the toggle changes only the
        // vouching, never the replay schedule, so both settings produce
        // byte-identical runs.
        let spec = match self.epochs.front() {
            Some(oldest) if !self.cfg.retain_results => oldest.cause_ready.max(now),
            Some(oldest) if self.cfg.event_wakeup => {
                // Blocked deferred work under an *open* oldest epoch:
                // with a free checkpoint (and a resumable PC) SST closes
                // the epoch on the very next tick — a state change no
                // window may jump. Without one, EA suspends its ahead
                // strand and the only per-cycle effect is the
                // `stall_ea_replay` counter, which `skip_to` credits in
                // bulk — so the window up to the next replay event is
                // vouchable. With the oldest epoch closed, blocked
                // entries are inert until the next replay event.
                if oldest.end_seq.is_none()
                    && self.dq.any_blocked()
                    && self.epochs.len() < self.cfg.checkpoints
                    && self.frontend.resume_pc().is_some()
                {
                    now
                } else {
                    self.replay_check_at.max(now)
                }
            }
            Some(_) => now,
            None => Cycle::MAX,
        };
        if spec <= now {
            return now;
        }
        // A suspended ahead strand cannot issue no matter what its head's
        // readiness says, so its wake must not shrink the window.
        let ahead = if self.ea_replay_suspended() {
            Cycle::MAX
        } else {
            self.ahead_wake(now).0.max(now)
        };
        // The wedge watchdog must still fire at the exact cycle it would
        // in an unskipped run.
        let watchdog = self.last_progress + 2_000_000;
        fetch.min(spec).min(ahead).min(watchdog)
    }

    fn skip_to(&mut self, target: Cycle) {
        let from = self.cycle;
        debug_assert!(from < target && target <= self.next_event_cycle());
        let n = target - from;
        // The whole window was vouched state-preserving, so the phase at
        // its first cycle holds across it.
        self.account_phase(from, n);
        self.frontend.note_skipped(from, target);
        if self.ea_replay_suspended() {
            // Each skipped cycle would have suspended the ahead strand in
            // `manage_speculation` (blocked deferred work, no free
            // checkpoint to close into) and counted one EA-replay stall —
            // and nothing else.
            self.stats.stall_ea_replay += n;
        } else {
            match self.ahead_wake(from).1 {
                AheadStall::Frontend => self.stats.stall_frontend += n,
                AheadStall::HaltWait => self.stats.stall_halt_wait += n,
                AheadStall::Operand => self.stats.stall_operand += n,
                AheadStall::LowConf => self.stats.stall_lowconf += n,
                AheadStall::DqFull => self.stats.stall_dq_full += n,
                AheadStall::StbFull => self.stats.stall_stb_full += n,
                AheadStall::None => debug_assert!(false, "skip_to with an issueable head"),
            }
        }
        self.cycle = target;
    }

    fn gate_to(&mut self, target: Cycle) {
        if target <= self.cycle {
            return;
        }
        let from = self.cycle;
        // Gated windows are dead time by construction, not pipeline
        // cycles: credit them to their own row so the table still sums
        // to the total cycle count.
        self.phase_cycles.add(Phase::Gated, target - from);
        if let Some(tb) = self.tracebuf.as_mut() {
            tb.set_phase(Phase::Gated, from);
        }
        self.cycle = target;
        // Gated time is intentional idleness, not a wedge: restart the
        // watchdog window at the resume cycle.
        self.last_progress = target;
    }

    fn core_id(&self) -> usize {
        self.id
    }

    fn model_name(&self) -> &'static str {
        if !self.cfg.retain_results {
            "scout"
        } else if self.cfg.checkpoints == 1 {
            "execute-ahead"
        } else {
            "sst"
        }
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = &self.stats;
        let bu = self.frontend.branch_unit_ref();
        vec![
            ("episodes", s.episodes),
            ("epochs_committed", s.epochs_committed),
            ("deferred", s.deferred),
            ("defer_nt_source", s.defer_nt_source),
            ("defer_store_order", s.defer_store_order),
            ("defer_forward_miss", s.defer_forward_miss),
            ("defer_cache_miss", s.defer_cache_miss),
            ("replayed", s.replayed),
            ("redeferred", s.redeferred),
            ("fail_branch", s.fail_branch),
            ("scout_rollbacks", s.scout_rollbacks),
            ("overlapped_misses", s.overlapped_misses),
            ("stall_frontend", s.stall_frontend),
            ("stall_operand", s.stall_operand),
            ("stall_dq_full", s.stall_dq_full),
            ("stall_stb_full", s.stall_stb_full),
            ("stall_ea_replay", s.stall_ea_replay),
            ("stall_halt_wait", s.stall_halt_wait),
            ("stall_port", s.stall_port),
            ("stall_lowconf", s.stall_lowconf),
            ("ahead_issued", s.ahead_issued),
            ("replay_issued", s.replay_issued),
            ("mispredicts", s.mispredicts),
            ("stb_forwards", self.stb_forwards()),
            ("dq_high_water", self.dq_high_water() as u64),
            ("stb_high_water", self.stb_high_water() as u64),
            ("cond_predictions", bu.cond_predictions),
            ("cond_mispredictions", bu.cond_mispredictions),
        ]
    }

    fn leakage(&self) -> Option<&LeakageSummary> {
        self.taint.as_deref().map(|t| &t.summary)
    }

    fn phases(&self) -> PhaseTable {
        self.phase_cycles
    }

    fn set_trace(&mut self, on: bool) {
        if on {
            if self.tracebuf.is_none() {
                self.tracebuf = Some(Box::new(TraceBuf::new()));
            }
        } else {
            self.tracebuf = None;
        }
    }

    fn take_trace(&mut self) -> Option<TraceBuf> {
        self.tracebuf.take().map(|mut tb| {
            tb.close(self.cycle);
            *tb
        })
    }

    fn set_host_prof(&mut self, on: bool) {
        if on {
            if self.prof.is_none() {
                self.prof = Some(Box::new(HostTimes::new()));
            }
        } else {
            self.prof = None;
        }
    }

    fn host_times(&self) -> Option<&HostTimes> {
        self.prof.as_deref()
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.tag("SSTC");
        w.put_u64(self.cycle);
        w.put_u64(self.seq);
        w.put_bool(self.halted);
        w.put_bool(self.no_defer);
        w.put_u64(self.last_progress);
        w.put_u64(self.replay_check_at);
        match self.replay_cursor {
            Some((seq, generation)) => {
                w.put_bool(true);
                w.put_u64(seq);
                w.put_u64(generation);
            }
            None => w.put_bool(false),
        }
        self.frontend.save_state(w);
        self.spec.save_state(w);
        w.put_usize(self.epochs.len());
        for ep in &self.epochs {
            ep.ckpt.save_state(w);
            w.put_opt_u64(ep.end_seq);
            w.put_u64(ep.cause_ready);
            w.put_usize(ep.log.len());
            for c in &ep.log {
                c.save_state(w);
            }
        }
        self.dq.save_state(w);
        self.stb.save_state(w);
        // The produced-value table is a hash map; serialize sorted by
        // producer sequence so identical states snapshot byte-identically.
        let mut vals: Vec<(Seq, u64, Cycle)> = self
            .replay_vals
            .iter()
            .map(|(&seq, &(value, ready))| (seq, value, ready))
            .collect();
        vals.sort_unstable_by_key(|&(seq, _, _)| seq);
        w.put_usize(vals.len());
        for (seq, value, ready) in vals {
            w.put_u64(seq);
            w.put_u64(value);
            w.put_u64(ready);
        }
        w.put_usize(self.commits.len());
        for c in &self.commits {
            c.save_state(w);
        }
        for ph in Phase::ALL {
            w.put_u64(self.phase_cycles.get(ph));
        }
        put_stats(w, &self.stats);
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("SSTC")?;
        let cycle = r.take_u64()?;
        let seq = r.take_u64()?;
        let halted = r.take_bool()?;
        let no_defer = r.take_bool()?;
        let last_progress = r.take_u64()?;
        let replay_check_at = r.take_u64()?;
        let replay_cursor = if r.take_bool()? {
            Some((r.take_u64()?, r.take_u64()?))
        } else {
            None
        };
        self.frontend.restore_state(r)?;
        self.spec.restore_state(r)?;
        let n_epochs = r.take_usize()?;
        if n_epochs > self.cfg.checkpoints {
            return Err(SnapError::Corrupt(format!(
                "epoch count {n_epochs} exceeds {} checkpoints",
                self.cfg.checkpoints
            )));
        }
        self.epochs.clear();
        for _ in 0..n_epochs {
            let ckpt = Checkpoint::load(r)?;
            let end_seq = r.take_opt_u64()?;
            let cause_ready = r.take_u64()?;
            let n_log = r.take_usize()?;
            let mut log = Vec::new();
            for _ in 0..n_log {
                log.push(Commit::load(r)?);
            }
            self.epochs.push_back(Epoch {
                ckpt,
                end_seq,
                log,
                cause_ready,
            });
        }
        self.dq.restore_state(r)?;
        self.stb.restore_state(r)?;
        let n_vals = r.take_usize()?;
        self.replay_vals.clear();
        for _ in 0..n_vals {
            let seq = r.take_u64()?;
            let value = r.take_u64()?;
            let ready = r.take_u64()?;
            self.replay_vals.insert(seq, (value, ready));
        }
        let n_commits = r.take_usize()?;
        self.commits.clear();
        for _ in 0..n_commits {
            self.commits.push(Commit::load(r)?);
        }
        let mut phases = PhaseTable::new();
        for ph in Phase::ALL {
            phases.add(ph, r.take_u64()?);
        }
        self.stats = take_stats(r)?;
        self.cycle = cycle;
        self.seq = seq;
        self.halted = halted;
        self.no_defer = no_defer;
        self.last_progress = last_progress;
        self.replay_check_at = replay_check_at;
        self.replay_cursor = replay_cursor;
        self.phase_cycles = phases;
        self.drain_buf.clear();
        Ok(())
    }

    fn warm_boot(&mut self, regs: &[u64; NUM_REGS], pc: u64) {
        // Squash every trace of speculation: the sampled-simulation driver
        // teleports the core to an architectural point the functional model
        // reached, so nothing in flight can be legitimate.
        self.epochs.clear();
        self.dq.clear();
        self.stb.squash_from(0);
        self.replay_vals.clear();
        self.replay_check_at = Cycle::MAX;
        self.replay_cursor = None;
        self.no_defer = false;
        self.halted = false;
        let mut image = RegImage::new();
        for (i, &v) in regs.iter().enumerate() {
            if let Some(reg) = Reg::from_index(i as u8) {
                image.write(reg, v, 0, 0);
            }
        }
        self.spec = image;
        self.frontend.warm_reset(pc);
        // The teleport is intentional idleness, not a wedge: restart the
        // watchdog window, or a core parked across several skipped sampling
        // periods would trip the 2M-cycle progress assertion.
        self.last_progress = self.cycle;
    }

    fn warm_predictor(&mut self, pc: u64, inst: Inst, taken: bool, next_pc: u64) {
        self.frontend.resolve(pc, inst, taken, next_pc);
    }
}
