use sst_mem::Cycle;
use sst_uarch::{ExecLatency, FrontendConfig};

/// Configuration of the SST core family.
///
/// The three named constructors ([`SstConfig::scout`],
/// [`SstConfig::execute_ahead`], [`SstConfig::sst`]) produce the paper's
/// three design points; every field can also be swept independently for
/// the sensitivity studies (experiments E6–E8).
#[derive(Clone, Debug)]
pub struct SstConfig {
    /// Issue width shared by the ahead and deferred strands.
    pub width: usize,
    /// Frontend (fetch/predict) configuration.
    pub frontend: FrontendConfig,
    /// Functional-unit latencies.
    pub latency: ExecLatency,
    /// Memory operations issued per cycle (shared by both strands).
    pub dcache_ports: usize,
    /// Number of hardware checkpoints: the maximum simultaneously live
    /// speculative epochs. 1 = execute-ahead / scout; 2 = ROCK's SST.
    pub checkpoints: usize,
    /// Deferred-queue capacity (shared by all live epochs).
    pub dq_entries: usize,
    /// Speculative store-buffer capacity.
    pub stb_entries: usize,
    /// A load defers when its memory latency exceeds this many cycles
    /// (set between the L2 hit and DRAM latencies so that off-chip misses
    /// defer but L2 hits do not).
    pub defer_threshold: Cycle,
    /// `true` keeps speculative results (EA/SST); `false` is hardware
    /// scout: results are discarded and execution restarts at the
    /// checkpoint when the originating miss returns.
    pub retain_results: bool,
    /// During replay, an entry whose inputs land within this many cycles
    /// stalls the deferred strand in place (pipeline bypass); anything
    /// longer re-defers for a later pass.
    pub bypass_stall_window: u64,
    /// Confidence gate (off by default, as in ROCK): when enabled, the
    /// ahead strand stalls at a *low-confidence* deferred branch instead of
    /// speculating past it, trading run-ahead coverage for fewer
    /// deferred-branch rollbacks. Ablation A3 measures the trade.
    pub confidence_gate: bool,
    /// Event-driven replay wakeup (on by default): `next_event_cycle`
    /// vouches the whole window up to `replay_check_at` — the next DQ
    /// data-ready arrival or entry-ready time — so the fast-forward driver
    /// skips a core parked on a long miss straight to the wake event
    /// instead of ticking empty replay passes. Off falls back to
    /// cycle-by-cycle ticking whenever an epoch is live; the toggle only
    /// gates the skip vouching, never the replay schedule itself, so runs
    /// with it on and off are byte-identical (the equivalence suite pins
    /// this).
    pub event_wakeup: bool,
    /// Speculation-taint tracking (off by default): tag every line touch,
    /// predictor update, and prefetcher training performed between
    /// checkpoint creation and rollback, and sweep the squashed range
    /// into a leakage record at each rollback (experiment E13, "does SST
    /// leak?"). Purely observational: recording and the rollback sweep
    /// never touch timing state, so runs with the flag on and off are
    /// byte-identical — same cycles, commits, counters, and memory
    /// statistics (the taint equivalence test pins this). The collected
    /// summary is reported through `Core::leakage`, never through
    /// `Core::counters`.
    pub taint: bool,
    /// Typed event tracing (off by default): record phase spans,
    /// checkpoint take/commit/rollback, defer/redefer/replay markers,
    /// and DQ/STB occupancy samples into an `sst_obs::TraceBuf` for the
    /// Chrome-trace exporter. The taint layer's contract applies
    /// verbatim: recording is purely observational and never consulted,
    /// so runs with the flag on and off are byte-identical — same
    /// cycles, commits, counters, and memory statistics (the trace
    /// equivalence test pins this). The buffer is reported through
    /// `Core::take_trace`, never through `Core::counters`. This flag
    /// replaces the old `SST_TRACE` / `SST_TRACE_FAILS` env-var reads,
    /// which were sampled per-core at construction and raced with
    /// harness-parallel jobs.
    pub trace: bool,
}

impl SstConfig {
    /// ROCK's SST design point: two checkpoints, result retention.
    pub fn sst() -> SstConfig {
        SstConfig {
            width: 2,
            frontend: FrontendConfig::default(),
            latency: ExecLatency::default(),
            dcache_ports: 1,
            checkpoints: 2,
            dq_entries: 128,
            stb_entries: 64,
            defer_threshold: 30,
            retain_results: true,
            bypass_stall_window: 6,
            confidence_gate: false,
            event_wakeup: true,
            taint: false,
            trace: false,
        }
    }

    /// Execute-ahead: one checkpoint, result retention, ahead thread
    /// suspends during replay.
    pub fn execute_ahead() -> SstConfig {
        SstConfig {
            checkpoints: 1,
            ..SstConfig::sst()
        }
    }

    /// Hardware scout / runahead: one checkpoint, no result retention.
    pub fn scout() -> SstConfig {
        SstConfig {
            checkpoints: 1,
            retain_results: false,
            ..SstConfig::sst()
        }
    }

    /// Short model label for reports ("scout", "ea", "sst", "sst-4", ...).
    pub fn label(&self) -> String {
        if !self.retain_results {
            "scout".to_string()
        } else if self.checkpoints == 1 {
            "ea".to_string()
        } else if self.checkpoints == 2 {
            "sst".to_string()
        } else {
            format!("sst-{}", self.checkpoints)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_point_labels() {
        assert_eq!(SstConfig::scout().label(), "scout");
        assert_eq!(SstConfig::execute_ahead().label(), "ea");
        assert_eq!(SstConfig::sst().label(), "sst");
        let wide = SstConfig {
            checkpoints: 4,
            ..SstConfig::sst()
        };
        assert_eq!(wide.label(), "sst-4");
    }

    #[test]
    fn scout_is_ea_without_retention() {
        let s = SstConfig::scout();
        let e = SstConfig::execute_ahead();
        assert_eq!(s.checkpoints, e.checkpoints);
        assert!(!s.retain_results);
        assert!(e.retain_results);
    }
}
