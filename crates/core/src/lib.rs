//! # sst-core
//!
//! The paper's contribution: a cycle-level model of **Simultaneous
//! Speculative Threading** (Chaudhry et al., ISCA 2009), the pipeline
//! organization of Sun's ROCK processor.
//!
//! One configurable core expresses the whole design space the paper
//! evaluates:
//!
//! * [`SstConfig::scout`] — **hardware scout / runahead**: on a deferrable
//!   load miss, checkpoint and keep executing purely for prefetching and
//!   predictor training; all results are discarded and execution restarts
//!   at the checkpoint when the miss returns.
//! * [`SstConfig::execute_ahead`] — **EA**: one checkpoint. Independent
//!   instructions retire speculatively; miss-dependents park in the
//!   deferred queue (DQ). When the miss returns, the pipeline *suspends the
//!   ahead thread* and replays the DQ.
//! * [`SstConfig::sst`] — **SST**: two (or more) checkpoints. When the miss
//!   returns, a second checkpoint closes the epoch, and the deferred thread
//!   replays it *simultaneously* with the still-advancing ahead thread,
//!   the two sharing the issue width of one in-order pipeline.
//!
//! The machinery matches the paper's structural claims: no rename tables,
//! no reorder buffer, no disambiguation CAM, no issue window — just
//! checkpoints, NT bits, the DQ, and the speculative store buffer (all from
//! `sst-uarch`).
//!
//! ## Model summary
//!
//! * **Defer rule**: an instruction with a not-there (NT) source defers,
//!   capturing its available operands and naming the deferred producer of
//!   each missing one. A load whose memory latency exceeds
//!   [`SstConfig::defer_threshold`] defers and marks its destination NT
//!   (taking the first checkpoint if none is active).
//! * **Memory order without a disambiguation buffer**: speculative stores
//!   live in the store buffer; an ahead load forwards from it, and defers
//!   whenever an older store's address or data is unknown or only
//!   partially overlaps.
//! * **Replay**: the deferred strand scans the oldest epoch's DQ entries in
//!   order, executing those whose inputs have arrived (multi-pass; a
//!   replayed load that misses again simply stays deferred). Results merge
//!   into the speculative register state under ROCK's writer-tag rule, and
//!   into every younger checkpoint image.
//! * **Failure**: a deferred branch (or indirect jump) whose resolved
//!   outcome disagrees with the fetch-time prediction rolls the core back
//!   to the epoch's checkpoint. DQ or store-buffer pressure never fails —
//!   the ahead thread stalls instead, as in ROCK.
//! * **Commit**: epochs commit in order once their DQ entries drain;
//!   buffered stores are released to the memory system and the epoch's
//!   instructions are reported (in program order) for co-simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod machine;
mod stats;

pub use config::SstConfig;
pub use machine::SstCore;
pub use stats::SstStats;
