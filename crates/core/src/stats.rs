/// Statistics of one SST-family core.
#[derive(Clone, Copy, Debug, Default)]
pub struct SstStats {
    // --- speculation machinery ---
    /// Speculative episodes started (checkpoints taken at a deferrable
    /// miss from normal mode).
    pub episodes: u64,
    /// Epochs that committed (retained their results).
    pub epochs_committed: u64,
    /// Instructions sent to the deferred queue.
    pub deferred: u64,
    /// Deferred instructions successfully replayed.
    pub replayed: u64,
    /// Replayed loads that missed again and stayed deferred.
    pub redeferred: u64,
    /// Rollbacks caused by a mispredicted deferred branch/jump.
    pub fail_branch: u64,
    /// Scout-mode episodes ended by the designed rollback (not a failure).
    pub scout_rollbacks: u64,
    /// Deferred loads issued while another deferred miss was outstanding
    /// (the memory-level-parallelism the paper's mechanism exposes).
    pub overlapped_misses: u64,

    // --- defer-cause taxonomy (rows sum to `deferred`) ---
    /// Defers caused by an NT source register (dependents of an earlier
    /// deferred instruction).
    pub defer_nt_source: u64,
    /// Loads deferred because an older store's address was unknown.
    pub defer_store_order: u64,
    /// Loads deferred by a partial store-buffer forwarding match.
    pub defer_forward_miss: u64,
    /// Loads deferred by a long-latency cache miss itself.
    pub defer_cache_miss: u64,

    // --- ahead-thread stalls ---
    /// Cycles the ahead strand issued nothing: empty decode queue.
    pub stall_frontend: u64,
    /// Cycles stalled on a not-ready (but not NT) operand.
    pub stall_operand: u64,
    /// Cycles stalled because the DQ was full.
    pub stall_dq_full: u64,
    /// Cycles stalled because the store buffer was full.
    pub stall_stb_full: u64,
    /// Cycles the ahead strand was suspended for EA replay.
    pub stall_ea_replay: u64,
    /// Cycles stalled waiting for epochs to commit at a `halt`.
    pub stall_halt_wait: u64,
    /// Issue slots lost to D-cache port limits.
    pub stall_port: u64,
    /// Cycles stalled at a low-confidence deferred branch (only with
    /// [`crate::SstConfig::confidence_gate`]).
    pub stall_lowconf: u64,

    // --- general ---
    /// Issue slots used by the ahead strand.
    pub ahead_issued: u64,
    /// Issue slots used by the deferred strand.
    pub replay_issued: u64,
    /// Control transfers resolved against the prediction and found wrong
    /// (ahead strand; deferred-branch failures are counted separately).
    pub mispredicts: u64,
}

impl SstStats {
    /// Fraction of deferred instructions among all issued.
    pub fn defer_rate(&self) -> f64 {
        let total = self.ahead_issued + self.replay_issued;
        if total == 0 {
            0.0
        } else {
            self.deferred as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defer_rate_handles_idle() {
        assert_eq!(SstStats::default().defer_rate(), 0.0);
        let s = SstStats {
            deferred: 5,
            ahead_issued: 10,
            replay_issued: 10,
            ..SstStats::default()
        };
        assert!((s.defer_rate() - 0.25).abs() < 1e-12);
    }
}
