//! Performance-ordering sanity: the qualitative shape of the paper's
//! results must hold on the canonical workload — per-thread performance
//! improves monotonically from in-order → scout → EA → SST on
//! miss-dominated code with independent work available, and nobody beats
//! anybody meaningfully on cache-resident code.

use sst_core::{SstConfig, SstCore};
use sst_inorder::{InOrderConfig, InOrderCore};
use sst_isa::{Asm, Program, Reg};
use sst_mem::{MemConfig, MemSystem};
use sst_uarch::Core;

fn run_core(mut core: impl Core, p: &Program, max: u64) -> (u64, u64) {
    let mut mem = MemSystem::new(&MemConfig::default(), 1);
    p.load_into(mem.mem_mut());
    while !core.halted() && core.cycle() < max {
        core.tick(&mut mem.bus(0));
    }
    assert!(core.halted(), "did not finish");
    (core.cycle(), core.retired())
}

fn cycles_for(p: &Program, which: &str) -> u64 {
    let max = 50_000_000;
    match which {
        "inorder" => run_core(InOrderCore::new(InOrderConfig::default(), 0, p), p, max).0,
        "scout" => run_core(SstCore::new(SstConfig::scout(), 0, p), p, max).0,
        "ea" => run_core(SstCore::new(SstConfig::execute_ahead(), 0, p), p, max).0,
        "sst" => run_core(SstCore::new(SstConfig::sst(), 0, p), p, max).0,
        other => panic!("unknown core {other}"),
    }
}

/// Random-index loads into a huge table (MLP-rich: every iteration's miss
/// is independent), each followed by a short dependent computation.
fn mlp_rich_misses() -> Program {
    let mut a = Asm::new();
    let logsize = 24; // 16 MiB table, way beyond L2
    let table = a.reserve(1 << logsize);
    a.la(Reg::x(20), table);
    a.li(Reg::x(1), 88172645463325252u64 as i64); // xorshift state
    a.li(Reg::x(2), 400); // iterations
    a.li(Reg::x(10), 0);
    let top = a.here();
    // next pseudo-random index
    a.slli(Reg::x(3), Reg::x(1), 13);
    a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
    a.srli(Reg::x(3), Reg::x(1), 7);
    a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
    a.slli(Reg::x(3), Reg::x(1), 17);
    a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
    // addr = table + (state & mask) aligned to 8
    a.li(Reg::x(4), (1i64 << logsize) - 8);
    a.and(Reg::x(5), Reg::x(1), Reg::x(4));
    a.andi(Reg::x(6), Reg::x(5), 0xff8);
    a.add(Reg::x(5), Reg::x(5), Reg::x(6)); // scramble a bit
    a.and(Reg::x(5), Reg::x(5), Reg::x(4));
    a.add(Reg::x(5), Reg::x(5), Reg::x(20));
    a.ld(Reg::x(7), Reg::x(5), 0); // independent miss
    // dependent work behind the miss
    a.add(Reg::x(10), Reg::x(10), Reg::x(7));
    a.xor(Reg::x(11), Reg::x(10), Reg::x(7));
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();
    a.finish().unwrap()
}

/// Cache-resident compute kernel: everybody should be within a few percent.
fn cache_resident() -> Program {
    let mut a = Asm::new();
    let buf = a.reserve(8 * 1024);
    // Warm the buffer so the measured loop runs out of the L1 on every
    // model (the cold misses are paid identically by all of them).
    a.la(Reg::x(1), buf);
    a.li(Reg::x(2), 128);
    let warm = a.here();
    a.ld(Reg::x(3), Reg::x(1), 0);
    a.addi(Reg::x(1), Reg::x(1), 64);
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, warm);
    a.la(Reg::x(1), buf);
    a.li(Reg::x(2), 20000);
    let top = a.here();
    a.andi(Reg::x(3), Reg::x(2), 1023);
    a.slli(Reg::x(3), Reg::x(3), 3);
    a.add(Reg::x(4), Reg::x(1), Reg::x(3));
    a.ld(Reg::x(5), Reg::x(4), 0);
    a.add(Reg::x(5), Reg::x(5), Reg::x(2));
    a.sd(Reg::x(5), Reg::x(4), 0);
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();
    a.finish().unwrap()
}

#[test]
fn sst_family_ordering_on_misses() {
    let p = mlp_rich_misses();
    let inorder = cycles_for(&p, "inorder");
    let scout = cycles_for(&p, "scout");
    let ea = cycles_for(&p, "ea");
    let sst = cycles_for(&p, "sst");
    eprintln!("inorder={inorder} scout={scout} ea={ea} sst={sst}");

    // Scout prefetches ahead: clearly better than in-order.
    assert!(
        (scout as f64) < inorder as f64 * 0.9,
        "scout {scout} should beat in-order {inorder}"
    );
    // EA retains results: at least as good as scout.
    assert!(
        (ea as f64) <= scout as f64 * 1.05,
        "ea {ea} should not lose to scout {scout}"
    );
    // SST overlaps replay with the ahead thread: at least as good as EA.
    assert!(
        (sst as f64) <= ea as f64 * 1.02,
        "sst {sst} should not lose to ea {ea}"
    );
    // And the full mechanism should be a large win over in-order.
    assert!(
        (sst as f64) < inorder as f64 * 0.7,
        "sst {sst} should be a big win over in-order {inorder}"
    );
}

#[test]
fn no_penalty_on_cache_resident_code() {
    let p = cache_resident();
    let inorder = cycles_for(&p, "inorder");
    let sst = cycles_for(&p, "sst");
    eprintln!("inorder={inorder} sst={sst}");
    let ratio = sst as f64 / inorder as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "sst ({sst}) should match in-order ({inorder}) when everything hits"
    );
}
