//! Co-simulation of the SST core family against the functional golden
//! model: every architecturally committed instruction must match the
//! reference interpreter exactly — PC, instruction, register write — and
//! the commit stream must be dense and program-ordered. These tests drive
//! the speculation machinery through its hard paths: deferral chains,
//! store/load interaction under speculation, deferred branches that
//! mispredict (rollback), scout restarts, and multi-epoch SST overlap.

use sst_core::{SstConfig, SstCore};
use sst_isa::{Asm, Inst, Interp, Reg};
use sst_mem::{MemConfig, MemSystem};
use sst_uarch::Core;

fn all_configs() -> Vec<(&'static str, SstConfig)> {
    vec![
        ("scout", SstConfig::scout()),
        ("ea", SstConfig::execute_ahead()),
        ("sst", SstConfig::sst()),
        (
            "sst-4",
            SstConfig {
                checkpoints: 4,
                ..SstConfig::sst()
            },
        ),
        (
            "sst-smallq",
            SstConfig {
                dq_entries: 4,
                stb_entries: 2,
                ..SstConfig::sst()
            },
        ),
    ]
}

/// Runs `build`'s program on the given SST config and co-simulates every
/// commit against the interpreter. Returns (core, mem) for extra checks.
fn cosim(cfg: SstConfig, build: &dyn Fn(&mut Asm), max_cycles: u64) -> (SstCore, MemSystem) {
    let mut a = Asm::new();
    build(&mut a);
    let p = a.finish().unwrap();
    let mut mem = MemSystem::new(&MemConfig::default(), 1);
    p.load_into(mem.mem_mut());
    let mut core = SstCore::new(cfg, 0, &p);
    let mut interp = Interp::new(&p);
    let mut checked: u64 = 0;

    while !core.halted() && core.cycle() < max_cycles {
        core.tick(&mut mem.bus(0));
        for c in core.drain_commits() {
            let ev = interp.step().expect("interp ok");
            checked += 1;
            assert_eq!(c.seq, checked, "commit stream must be dense");
            assert_eq!(c.pc, ev.pc, "pc diverged at commit {checked}");
            assert_eq!(c.inst, ev.inst, "inst diverged at commit {checked}");
            assert_eq!(
                c.reg_write, ev.reg_write,
                "register write diverged at commit {checked} (pc {:#x}, {:?})",
                c.pc, c.inst
            );
            if let Some((addr, bytes, value)) = c.store {
                match ev.mem {
                    sst_isa::MemEffect::Store {
                        addr: ea,
                        bytes: eb,
                        value: ev_,
                    } => {
                        assert_eq!((addr, bytes), (ea, eb), "store addr diverged");
                        let mask = if bytes == 8 {
                            u64::MAX
                        } else {
                            (1u64 << (bytes * 8)) - 1
                        };
                        assert_eq!(value & mask, ev_ & mask, "store value diverged");
                    }
                    other => panic!("core stored but interp did {other:?}"),
                }
            }
        }
    }
    assert!(
        core.halted(),
        "program did not finish in {max_cycles} cycles (retired {})",
        core.retired()
    );
    assert!(interp.is_halted(), "commit stream ended before the halt");
    assert!(checked > 0);
    (core, mem)
}

fn cosim_all(build: impl Fn(&mut Asm), max_cycles: u64) {
    for (name, cfg) in all_configs() {
        let build_ref: &dyn Fn(&mut Asm) = &build;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cosim(cfg, build_ref, max_cycles)
        }))
        .unwrap_or_else(|e| panic!("config {name} failed: {e:?}"));
    }
}

/// Pointer chase with dependent work behind each miss — the canonical SST
/// workload: the chase load misses, its dependents defer, independent
/// counter work continues.
fn chase_with_work(a: &mut Asm) {
    let hops = 24u64;
    let stride = 1 << 20;
    let base = a.reserve(stride * (hops + 2));
    // Build chain.
    a.la(Reg::x(1), base);
    a.li(Reg::x(2), hops as i64);
    a.li(Reg::x(3), stride as i64);
    let w = a.here();
    a.add(Reg::x(4), Reg::x(1), Reg::x(3));
    a.sd(Reg::x(4), Reg::x(1), 0);
    a.sd(Reg::x(2), Reg::x(1), 8); // payload
    a.mv(Reg::x(1), Reg::x(4));
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, w);
    // Chase with dependent payload work + independent accumulation.
    a.la(Reg::x(1), base);
    a.li(Reg::x(2), hops as i64);
    a.li(Reg::x(10), 0); // dependent sum
    a.li(Reg::x(11), 0); // independent sum
    let c = a.here();
    a.ld(Reg::x(5), Reg::x(1), 8); // dependent on x1 (payload)
    a.add(Reg::x(10), Reg::x(10), Reg::x(5)); // dependent on the load
    a.ld(Reg::x(1), Reg::x(1), 0); // the chase itself
    a.addi(Reg::x(11), Reg::x(11), 3); // independent
    a.addi(Reg::x(11), Reg::x(11), 4); // independent
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, c);
    a.halt();
}

#[test]
fn cosim_chase_with_work_all_models() {
    cosim_all(chase_with_work, 10_000_000);
}

#[test]
fn speculation_actually_engages() {
    let (core, _m) = cosim(SstConfig::sst(), &chase_with_work, 10_000_000);
    assert!(core.stats.episodes > 0, "no speculative episode started");
    assert!(core.stats.deferred > 0, "nothing was deferred");
    assert!(core.stats.replayed > 0, "nothing was replayed");
    assert!(core.stats.epochs_committed > 0, "no epoch committed");
}

#[test]
fn scout_rolls_back_instead_of_committing() {
    let (core, _m) = cosim(SstConfig::scout(), &chase_with_work, 10_000_000);
    assert!(core.stats.scout_rollbacks > 0, "scout never rolled back");
    assert_eq!(core.stats.epochs_committed, 0, "scout must not commit epochs");
    assert!(core.stats.fail_branch == 0);
}

/// Stores under speculation: a missing load gates the address of a store,
/// later loads to the same region must see the right values.
#[test]
fn cosim_deferred_store_address() {
    cosim_all(
        |a| {
            let stride = 1 << 20;
            let slots = 8u64;
            let table = a.reserve(stride * (slots + 1));
            let out = a.reserve(4096);
            // table[i] holds i*8 (an offset into out).
            a.la(Reg::x(1), table);
            a.li(Reg::x(2), slots as i64);
            a.li(Reg::x(5), 0);
            let w = a.here();
            a.sd(Reg::x(5), Reg::x(1), 0);
            a.li(Reg::x(6), stride as i64);
            a.add(Reg::x(1), Reg::x(1), Reg::x(6));
            a.addi(Reg::x(5), Reg::x(5), 8);
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, w);
            // For each slot: load offset (misses), store to out+offset
            // (address depends on miss), then load it back.
            a.la(Reg::x(1), table);
            a.la(Reg::x(3), out);
            a.li(Reg::x(2), slots as i64);
            a.li(Reg::x(10), 0);
            let c = a.here();
            a.ld(Reg::x(4), Reg::x(1), 0); // offset (misses)
            a.add(Reg::x(6), Reg::x(3), Reg::x(4)); // NT address
            a.li(Reg::x(7), 77);
            a.add(Reg::x(7), Reg::x(7), Reg::x(4)); // NT data
            a.sd(Reg::x(7), Reg::x(6), 0); // deferred store (addr+data NT)
            a.ld(Reg::x(8), Reg::x(6), 0); // load it back (NT address)
            a.add(Reg::x(10), Reg::x(10), Reg::x(8));
            a.li(Reg::x(9), stride as i64);
            a.add(Reg::x(1), Reg::x(1), Reg::x(9));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, c);
            a.halt();
        },
        20_000_000,
    );
}

/// Store-to-load forwarding during speculation: the forwarded value must be
/// the speculative one, not memory's.
#[test]
fn cosim_forwarding_under_speculation() {
    cosim_all(
        |a| {
            let stride = 1 << 20;
            let hops = 8u64;
            let chain = a.reserve(stride * (hops + 1));
            let scratch = a.reserve(64);
            a.la(Reg::x(1), chain);
            a.li(Reg::x(2), hops as i64);
            a.li(Reg::x(3), stride as i64);
            let w = a.here();
            a.add(Reg::x(4), Reg::x(1), Reg::x(3));
            a.sd(Reg::x(4), Reg::x(1), 0);
            a.mv(Reg::x(1), Reg::x(4));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, w);
            // Chase; behind each miss, store+reload a counter to scratch
            // (independent of the miss => executes ahead and forwards).
            a.la(Reg::x(1), chain);
            a.la(Reg::x(5), scratch);
            a.li(Reg::x(2), hops as i64);
            a.li(Reg::x(10), 0);
            let c = a.here();
            a.ld(Reg::x(1), Reg::x(1), 0); // miss
            a.sd(Reg::x(2), Reg::x(5), 0); // independent store
            a.ld(Reg::x(6), Reg::x(5), 0); // forwards from the store buffer
            a.add(Reg::x(10), Reg::x(10), Reg::x(6));
            a.sw(Reg::x(10), Reg::x(5), 8); // partial-width store
            a.lw(Reg::x(7), Reg::x(5), 8);
            a.add(Reg::x(10), Reg::x(10), Reg::x(7));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, c);
            a.halt();
        },
        20_000_000,
    );
    // The SST run must actually have forwarded.
    let (core, _m) = cosim(
        SstConfig::sst(),
        &|a: &mut Asm| {
            let stride = 1 << 20;
            let hops = 8u64;
            let chain = a.reserve(stride * (hops + 1));
            let scratch = a.reserve(64);
            a.la(Reg::x(1), chain);
            a.li(Reg::x(2), hops as i64);
            a.li(Reg::x(3), stride as i64);
            let w = a.here();
            a.add(Reg::x(4), Reg::x(1), Reg::x(3));
            a.sd(Reg::x(4), Reg::x(1), 0);
            a.mv(Reg::x(1), Reg::x(4));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, w);
            a.la(Reg::x(1), chain);
            a.la(Reg::x(5), scratch);
            a.li(Reg::x(2), hops as i64);
            let c = a.here();
            a.ld(Reg::x(1), Reg::x(1), 0);
            a.sd(Reg::x(2), Reg::x(5), 0);
            a.ld(Reg::x(6), Reg::x(5), 0);
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, c);
            a.halt();
        },
        20_000_000,
    );
    assert!(core.stb_forwards() > 0, "no store-buffer forwarding happened");
}

/// Deferred branches: branch direction depends on missing data and is
/// sometimes mispredicted -> rollback path must restore perfectly.
#[test]
fn cosim_deferred_branch_mispredicts() {
    let build = |a: &mut Asm| {
        let stride = 1 << 20;
        let n = 32u64;
        let table = a.reserve(stride * (n + 1));
        // table[i] = pseudo-random parity via xorshift, written with code.
        a.la(Reg::x(1), table);
        a.li(Reg::x(2), n as i64);
        a.li(Reg::x(7), 88172645463325252u64 as i64);
        let w = a.here();
        a.slli(Reg::x(8), Reg::x(7), 13);
        a.xor(Reg::x(7), Reg::x(7), Reg::x(8));
        a.srli(Reg::x(8), Reg::x(7), 7);
        a.xor(Reg::x(7), Reg::x(7), Reg::x(8));
        a.slli(Reg::x(8), Reg::x(7), 17);
        a.xor(Reg::x(7), Reg::x(7), Reg::x(8));
        a.andi(Reg::x(9), Reg::x(7), 1);
        a.sd(Reg::x(9), Reg::x(1), 0);
        a.li(Reg::x(6), stride as i64);
        a.add(Reg::x(1), Reg::x(1), Reg::x(6));
        a.addi(Reg::x(2), Reg::x(2), -1);
        a.bne(Reg::x(2), Reg::ZERO, w);
        // Walk: branch on the (missing) loaded value.
        a.la(Reg::x(1), table);
        a.li(Reg::x(2), n as i64);
        a.li(Reg::x(10), 0);
        a.li(Reg::x(11), 0);
        let c = a.here();
        a.ld(Reg::x(4), Reg::x(1), 0); // misses; branch below defers
        let odd = a.label();
        let join = a.label();
        a.bne(Reg::x(4), Reg::ZERO, odd);
        a.addi(Reg::x(10), Reg::x(10), 1);
        a.j(join);
        a.bind(odd);
        a.addi(Reg::x(11), Reg::x(11), 1);
        a.bind(join);
        a.li(Reg::x(6), stride as i64);
        a.add(Reg::x(1), Reg::x(1), Reg::x(6));
        a.addi(Reg::x(2), Reg::x(2), -1);
        a.bne(Reg::x(2), Reg::ZERO, c);
        a.halt();
    };
    cosim_all(build, 50_000_000);
    let (core, _m) = cosim(SstConfig::sst(), &build, 50_000_000);
    assert!(
        core.stats.fail_branch > 0,
        "random deferred branches must sometimes fail"
    );
}

/// Deep dependence chains across multiple misses (stresses multi-epoch SST
/// and re-deferral).
#[test]
fn cosim_multi_miss_dependence_chains() {
    cosim_all(
        |a| {
            let stride = 1 << 20;
            let hops = 20u64;
            let base = a.reserve(stride * (hops + 2));
            a.la(Reg::x(1), base);
            a.li(Reg::x(2), hops as i64);
            a.li(Reg::x(3), stride as i64);
            let w = a.here();
            a.add(Reg::x(4), Reg::x(1), Reg::x(3));
            a.sd(Reg::x(4), Reg::x(1), 0);
            a.mv(Reg::x(1), Reg::x(4));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, w);
            // Two interleaved chases + cross-chain arithmetic.
            a.la(Reg::x(1), base);
            a.la(Reg::x(5), base);
            a.li(Reg::x(2), (hops / 2) as i64);
            a.li(Reg::x(10), 0);
            let c = a.here();
            a.ld(Reg::x(1), Reg::x(1), 0);
            a.ld(Reg::x(5), Reg::x(5), 0);
            a.ld(Reg::x(6), Reg::x(1), 0); // depends on chase 1
            a.add(Reg::x(10), Reg::x(10), Reg::x(6));
            a.xor(Reg::x(11), Reg::x(1), Reg::x(5)); // depends on both
            a.add(Reg::x(10), Reg::x(10), Reg::x(11));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, c);
            a.halt();
        },
        50_000_000,
    );
}

/// Tiny DQ and store buffer: stall paths engage but correctness holds.
#[test]
fn cosim_tiny_structures_stall_not_break() {
    let cfg = SstConfig {
        dq_entries: 2,
        stb_entries: 1,
        ..SstConfig::sst()
    };
    let (core, _m) = cosim(cfg, &chase_with_work, 50_000_000);
    assert!(core.stats.stall_dq_full > 0 || core.stats.stall_stb_full > 0);
}

/// Call/return and indirect jumps under speculation.
#[test]
fn cosim_calls_under_speculation() {
    cosim_all(
        |a| {
            let stride = 1 << 20;
            let hops = 8u64;
            let base = a.reserve(stride * (hops + 1));
            a.la(Reg::x(1), base);
            a.li(Reg::x(2), hops as i64);
            a.li(Reg::x(3), stride as i64);
            let w = a.here();
            a.add(Reg::x(4), Reg::x(1), Reg::x(3));
            a.sd(Reg::x(4), Reg::x(1), 0);
            a.mv(Reg::x(1), Reg::x(4));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, w);

            let helper = a.label();
            a.la(Reg::x(1), base);
            a.li(Reg::x(2), hops as i64);
            a.li(Reg::x(10), 0);
            let c = a.here();
            a.ld(Reg::x(1), Reg::x(1), 0); // miss
            a.call(helper); // call behind the miss
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, c);
            a.halt();
            a.bind(helper);
            a.addi(Reg::x(10), Reg::x(10), 5);
            a.ret();
        },
        20_000_000,
    );
}

/// The EA-mode suspension path: with one checkpoint the ahead thread must
/// stop during replay, and still co-simulate.
#[test]
fn ea_suspends_during_replay() {
    let (core, _m) = cosim(SstConfig::execute_ahead(), &chase_with_work, 10_000_000);
    assert!(
        core.stats.stall_ea_replay > 0,
        "EA never suspended the ahead thread"
    );
    assert!(core.stats.epochs_committed > 0);
}

/// Cache-resident code never speculates: SST behaves exactly like an
/// in-order core on L1-hitting workloads.
#[test]
fn no_speculation_when_everything_hits() {
    let (core, _m) = cosim(
        SstConfig::sst(),
        &|a: &mut Asm| {
            let buf = a.reserve(256);
            a.la(Reg::x(1), buf);
            a.li(Reg::x(2), 200);
            let top = a.here();
            a.sd(Reg::x(2), Reg::x(1), 0);
            a.ld(Reg::x(3), Reg::x(1), 0);
            a.add(Reg::x(4), Reg::x(4), Reg::x(3));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, top);
            a.halt();
        },
        1_000_000,
    );
    // The very first touch of the buffer misses (cold), so one episode is
    // allowed; after warm-up there must be essentially no deferral.
    assert!(core.stats.episodes <= 3, "episodes: {}", core.stats.episodes);
}

/// Halt right after a miss: the halt must wait for the epoch to resolve.
#[test]
fn halt_waits_for_outstanding_speculation() {
    cosim_all(
        |a| {
            let far = a.reserve(1 << 21);
            a.la(Reg::x(1), far);
            a.ld(Reg::x(2), Reg::x(1), 0); // cold miss
            a.add(Reg::x(3), Reg::x(2), Reg::x(2)); // dependent
            a.halt();
        },
        1_000_000,
    );
}

/// Back-to-back epochs reusing checkpoints.
#[test]
fn checkpoint_reuse_across_episodes() {
    let (core, _m) = cosim(SstConfig::sst(), &chase_with_work, 10_000_000);
    assert!(
        core.stats.episodes >= 1,
        "expected at least one episode, got {}",
        core.stats.episodes
    );
    assert!(
        core.stats.epochs_committed >= 2,
        "expected multiple committed epochs, got {}",
        core.stats.epochs_committed
    );
    let _ = core.stats.overlapped_misses;
}

/// Commit-mode instructions count: total committed == dynamic instruction
/// count of the interpreter.
#[test]
fn committed_count_matches_functional_count() {
    let mut a = Asm::new();
    chase_with_work(&mut a);
    let p = a.finish().unwrap();
    let mut interp = Interp::new(&p);
    let functional = interp.run(u64::MAX).unwrap().steps;

    for (_, cfg) in all_configs() {
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        p.load_into(mem.mem_mut());
        let mut core = SstCore::new(cfg, 0, &p);
        let mut total = 0u64;
        while !core.halted() && core.cycle() < 50_000_000 {
            core.tick(&mut mem.bus(0));
            total += core.drain_commits().len() as u64;
        }
        total += core.drain_commits().len() as u64;
        assert_eq!(total, functional);
    }
    // Silence unused-inst warning pattern.
    let _ = Inst::Halt;
}
