//! Epoch-machinery scenarios observable through the public API: eager
//! checkpoint anchoring, re-deferral accounting, scout cleanliness,
//! halt discipline, and stall attribution.

use sst_core::{SstConfig, SstCore};
use sst_isa::{Asm, Program, Reg};
use sst_mem::{MemConfig, MemSystem};
use sst_uarch::Core;

fn run_with(cfg: SstConfig, p: &Program, max: u64) -> (SstCore, MemSystem) {
    let mut mem = MemSystem::new(&MemConfig::default(), 1);
    p.load_into(mem.mem_mut());
    let mut core = SstCore::new(cfg, 0, p);
    while !core.halted() && core.cycle() < max {
        core.tick(&mut mem.bus(0));
        core.drain_commits();
    }
    assert!(core.halted(), "did not halt");
    (core, mem)
}

/// Independent misses with no branches: with eager checkpointing, two
/// checkpoints yield roughly one committed epoch per miss pair.
fn independent_misses(n: u64) -> Program {
    let mut a = Asm::new();
    let region = a.reserve((n + 1) * (1 << 20));
    a.la(Reg::x(20), region);
    a.li(Reg::x(2), n as i64);
    a.li(Reg::x(3), 1 << 20);
    let top = a.here();
    a.ld(Reg::x(4), Reg::x(20), 0); // miss
    a.add(Reg::x(10), Reg::x(10), Reg::x(4)); // dependent use
    a.add(Reg::x(20), Reg::x(20), Reg::x(3));
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();
    a.finish().unwrap()
}

#[test]
fn eager_checkpoints_commit_per_miss_region() {
    let p = independent_misses(32);
    let (core, _m) = run_with(SstConfig::sst(), &p, 100_000_000);
    // With 2 checkpoints, eager anchoring still bounds epochs: several
    // must commit over the run rather than one terminal mega-epoch.
    assert!(
        core.stats.epochs_committed >= 3,
        "epochs committed: {}",
        core.stats.epochs_committed
    );
    assert_eq!(core.stats.fail_branch, 0, "no unpredictable branches here");
}

#[test]
fn more_checkpoints_mean_finer_epochs() {
    let p = independent_misses(48);
    let (two, _m) = run_with(SstConfig::sst(), &p, 100_000_000);
    let (eight, _m) = run_with(
        SstConfig {
            checkpoints: 8,
            ..SstConfig::sst()
        },
        &p,
        100_000_000,
    );
    assert!(
        eight.stats.epochs_committed >= two.stats.epochs_committed,
        "8 ckpts ({}) should commit at least as many epochs as 2 ({})",
        eight.stats.epochs_committed,
        two.stats.epochs_committed
    );
}

#[test]
fn redeferral_counts_on_dependent_chases() {
    // A chase: each replayed hop's address only becomes known at replay,
    // misses again, and must re-defer.
    let mut a = Asm::new();
    let stride = 1 << 20;
    let hops = 24u64;
    let base = a.reserve(stride * (hops + 1));
    a.la(Reg::x(1), base);
    a.li(Reg::x(2), hops as i64);
    a.li(Reg::x(3), stride as i64);
    let w = a.here();
    a.add(Reg::x(4), Reg::x(1), Reg::x(3));
    a.sd(Reg::x(4), Reg::x(1), 0);
    a.mv(Reg::x(1), Reg::x(4));
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, w);
    a.la(Reg::x(1), base);
    a.li(Reg::x(2), hops as i64);
    let c = a.here();
    a.ld(Reg::x(1), Reg::x(1), 0);
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, c);
    a.halt();
    let p = a.finish().unwrap();
    let (core, _m) = run_with(SstConfig::sst(), &p, 100_000_000);
    assert!(
        core.stats.redeferred > hops / 2,
        "chained hops re-defer at replay: {}",
        core.stats.redeferred
    );
}

#[test]
fn scout_leaves_no_speculative_residue() {
    let p = independent_misses(16);
    let (core, mem) = run_with(SstConfig::scout(), &p, 100_000_000);
    assert_eq!(core.stats.epochs_committed, 0);
    assert!(core.stats.scout_rollbacks > 0);
    // Architectural memory state must still be exactly the program's
    // (scout never writes speculative stores): spot-check a known cell.
    let _ = mem;
    assert_eq!(core.retired(), p_len_dynamic(&p));
}

/// Dynamic instruction count via the reference interpreter.
fn p_len_dynamic(p: &Program) -> u64 {
    let mut i = sst_isa::Interp::new(p);
    i.run(u64::MAX).unwrap().steps
}

#[test]
fn stat_accounting_is_coherent() {
    let p = independent_misses(32);
    let (core, _m) = run_with(SstConfig::sst(), &p, 100_000_000);
    let s = &core.stats;
    // Every deferred instruction either replayed or was squashed by a
    // rollback; with no failures they all replayed.
    assert_eq!(s.fail_branch, 0);
    assert_eq!(s.deferred, s.replayed, "deferred {} replayed {}", s.deferred, s.replayed);
    // Ahead-issued covers every committed instruction at least once.
    assert!(s.ahead_issued >= core.retired() - s.replayed);
}

/// Forced mid-pass rollback: a deferred branch whose prediction is wrong
/// while younger speculative work sits in the DQ. The squash-time
/// accounting identity must hold exactly — every entry ever pushed into
/// the DQ either replayed successfully or was squashed by a rollback:
/// `deferred == replayed + Σ dq_squashed` (the sweep totals come from the
/// taint layer, which records per-rollback squash counts).
#[test]
fn forced_rollback_counter_audit() {
    let mut a = Asm::new();
    let region = a.reserve(8 << 20);
    a.la(Reg::x(1), region);
    a.ld(Reg::x(4), Reg::x(1), 0); // cold miss: defers, x4 goes NT
    let spec = a.label();
    // Sparse memory reads zero, so the branch is architecturally
    // not-taken; a cold gshare entry predicts taken, so the ahead strand
    // runs the `spec` path until replay resolves the branch and fails.
    a.bne(Reg::x(4), Reg::ZERO, spec);
    a.li(Reg::x(9), 123);
    a.halt();
    a.bind(spec);
    // Younger speculative work destined for the squash: three more
    // deferring loads, then ALU spin (never a halt on the wrong path).
    a.li(Reg::x(3), 1 << 20);
    a.add(Reg::x(2), Reg::x(1), Reg::x(3));
    a.ld(Reg::x(5), Reg::x(2), 0);
    a.add(Reg::x(2), Reg::x(2), Reg::x(3));
    a.ld(Reg::x(6), Reg::x(2), 0);
    a.add(Reg::x(2), Reg::x(2), Reg::x(3));
    a.ld(Reg::x(7), Reg::x(2), 0);
    let spin = a.here();
    a.add(Reg::x(10), Reg::x(10), Reg::x(9));
    a.j(spin);
    let p = a.finish().unwrap();

    let cfg = SstConfig {
        taint: true,
        ..SstConfig::sst()
    };
    let (core, _m) = run_with(cfg, &p, 100_000_000);
    let s = &core.stats;
    assert_eq!(s.fail_branch, 1, "exactly one deferred-branch failure");
    assert_eq!(s.scout_rollbacks, 0);
    let sweep = &core.taint_state().expect("taint on").summary;
    assert_eq!(sweep.rollbacks, 1);
    assert!(
        sweep.dq_squashed >= 3,
        "the three wrong-path loads were in the DQ: {}",
        sweep.dq_squashed
    );
    assert_eq!(
        s.deferred,
        s.replayed + sweep.dq_squashed,
        "deferred {} != replayed {} + dq_squashed {}",
        s.deferred,
        s.replayed,
        sweep.dq_squashed
    );
}

/// The same identity on a run whose rollbacks interleave with commits
/// (the E13 gadget): accounting stays exact under churn, not just in the
/// single-failure scenario above.
#[test]
fn counter_identity_survives_rollback_churn() {
    let w = sst_workloads::Workload::by_name("g_bcb", sst_workloads::Scale::Smoke, 3).unwrap();
    let cfg = SstConfig {
        taint: true,
        ..SstConfig::execute_ahead()
    };
    let (core, _m) = run_with(cfg, &w.program, 200_000_000);
    let s = &core.stats;
    let sweep = &core.taint_state().expect("taint on").summary;
    assert!(s.fail_branch > 10, "gadget must keep failing: {}", s.fail_branch);
    assert!(s.epochs_committed > 10, "authorized epochs commit: {}", s.epochs_committed);
    assert_eq!(
        s.deferred,
        s.replayed + sweep.dq_squashed,
        "deferred {} != replayed {} + dq_squashed {}",
        s.deferred,
        s.replayed,
        sweep.dq_squashed
    );
}

#[test]
fn dq_and_stb_high_water_within_capacity() {
    let p = independent_misses(64);
    let cfg = SstConfig {
        dq_entries: 16,
        stb_entries: 4,
        ..SstConfig::sst()
    };
    let (core, _m) = run_with(cfg, &p, 200_000_000);
    assert!(core.dq_high_water() <= 16);
    assert!(core.stb_high_water() <= 4);
}
