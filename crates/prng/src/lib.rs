//! # sst-prng
//!
//! A small, dependency-free, deterministic pseudo-random number generator
//! for the workspace: SplitMix64 seed expansion feeding xoshiro256++.
//! It replaces the external `rand` crate so the whole workspace builds
//! and tests with **no registry access**, and it guarantees that a given
//! seed produces the same stream on every platform and toolchain —
//! workload data images (and therefore experiment results and the
//! harness's content-addressed cache) depend on that stability.
//!
//! ```
//! use sst_prng::Prng;
//!
//! let mut r = Prng::seed_from_u64(42);
//! let a: u64 = r.next_u64();
//! let b = r.gen_range(0..10u64);
//! assert!(b < 10);
//! let mut r2 = Prng::seed_from_u64(42);
//! assert_eq!(r2.next_u64(), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// xoshiro256++ generator, seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
}

/// One SplitMix64 step (also used for seed expansion and stable hashing).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Seeds the generator from a single `u64` (SplitMix64 expansion, as
    /// recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Prng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// The next 64 uniformly random bits (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniformly random value of a supported type (`u64`, `u32`, `u8`,
    /// `bool`, `f64` in `[0, 1)`).
    #[inline]
    pub fn gen<T: FromPrng>(&mut self) -> T {
        T::from_prng(self)
    }

    /// A uniform sample from `range` (`Range` or `RangeInclusive` over the
    /// supported integer types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability: {p}");
        self.gen::<f64>() < p
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    #[inline]
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection zone below 2^64 mod bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types [`Prng::gen`] can produce.
pub trait FromPrng {
    /// Draws one value.
    fn from_prng(rng: &mut Prng) -> Self;
}

impl FromPrng for u64 {
    #[inline]
    fn from_prng(rng: &mut Prng) -> u64 {
        rng.next_u64()
    }
}

impl FromPrng for u32 {
    #[inline]
    fn from_prng(rng: &mut Prng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromPrng for u8 {
    #[inline]
    fn from_prng(rng: &mut Prng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl FromPrng for i64 {
    #[inline]
    fn from_prng(rng: &mut Prng) -> i64 {
        rng.next_u64() as i64
    }
}

impl FromPrng for bool {
    #[inline]
    fn from_prng(rng: &mut Prng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl FromPrng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_prng(rng: &mut Prng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Prng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut Prng) -> T;
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u64, u32, u16, u8, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded(span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

/// FNV-1a 64-bit hash of a byte string — the workspace's stable content
/// hash (cache keys must not depend on `std`'s randomized hasher).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors_xoshiro256pp() {
        // Seeded s = [1, 2, 3, 4]: first outputs of the reference C
        // implementation of xoshiro256++.
        let mut r = Prng { s: [1, 2, 3, 4] };
        let expect: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expect {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // SplitMix64 with state 0: first output is 0xE220A8397B1DCDAF.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        let mut c = Prng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = r.gen_range(5..17u64);
            assert!((5..17).contains(&x));
            let y = r.gen_range(-50..50i64);
            assert!((-50..50).contains(&y));
            let z = r.gen_range(1..=255u8);
            assert!((1..=255).contains(&z));
            let w = r.gen_range(0..3usize);
            assert!(w < 3);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_covers_small_ranges() {
        let mut r = Prng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Prng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fnv1a_stable() {
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a(b"oltp"), fnv1a(b"erp"));
    }
}
