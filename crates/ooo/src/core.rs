//! The out-of-order pipeline model.

use std::collections::VecDeque;

use sst_isa::{decode, encode, Inst, Program, Reg, SnapError, SnapReader, SnapWriter, NUM_REGS};
use sst_mem::{AccessKind, Cycle, MemBus};
use sst_obs::{HostTimes, Phase, Stage, TraceBuf};
use sst_uarch::{
    execute, extend_load, mem_addr, Commit, Core, ExecLatency, Frontend, FrontendConfig,
    LeakageSummary, Seq, SquashCounts, TaintState,
};

/// Configuration of the out-of-order baseline.
#[derive(Clone, Debug)]
pub struct OooConfig {
    /// Frontend (fetch/predict) configuration.
    pub frontend: FrontendConfig,
    /// Functional-unit latencies.
    pub latency: ExecLatency,
    /// Instructions renamed per cycle.
    pub rename_width: usize,
    /// Instructions issued per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Unified issue-queue entries (instructions waiting to issue).
    pub iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Memory operations issued per cycle.
    pub dcache_ports: usize,
    /// Speculation-taint tracking (off by default): tag the cache lines
    /// touched by wrong-path work — the phantom walk's prefetches and
    /// loads squashed by a memory-order violation — plus the predictor
    /// and prefetcher state they mutate, and sweep the residue into a
    /// leakage record at each redirect/squash (experiment E13). Purely
    /// observational: runs with the flag on and off are byte-identical;
    /// the summary is reported through `Core::leakage`, never through
    /// `Core::counters`.
    pub taint: bool,
}

impl OooConfig {
    /// A small 2-wide machine with a 32-entry window (area-comparable to
    /// the SST core plus its rename/ROB overhead).
    pub fn ooo_32() -> OooConfig {
        OooConfig {
            frontend: FrontendConfig {
                width: 2,
                ..FrontendConfig::default()
            },
            latency: ExecLatency::default(),
            rename_width: 2,
            issue_width: 2,
            commit_width: 2,
            rob_entries: 32,
            iq_entries: 16,
            lq_entries: 16,
            sq_entries: 12,
            dcache_ports: 1,
            taint: false,
        }
    }

    /// A 4-wide machine with a 64-entry window.
    pub fn ooo_64() -> OooConfig {
        OooConfig {
            frontend: FrontendConfig {
                width: 4,
                ..FrontendConfig::default()
            },
            rename_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_entries: 64,
            iq_entries: 32,
            lq_entries: 24,
            sq_entries: 20,
            dcache_ports: 2,
            ..OooConfig::ooo_32()
        }
    }

    /// A large 4-wide machine with a 128-entry window (the "larger and
    /// higher-powered out-of-order core" of the paper's headline claim).
    pub fn ooo_128() -> OooConfig {
        OooConfig {
            rob_entries: 128,
            iq_entries: 64,
            lq_entries: 48,
            sq_entries: 32,
            ..OooConfig::ooo_64()
        }
    }

    /// Label for reports ("ooo-32", ...).
    pub fn label(&self) -> String {
        format!("ooo-{}", self.rob_entries)
    }
}

/// Statistics of the out-of-order core.
#[derive(Clone, Copy, Debug, Default)]
pub struct OooStats {
    /// Cycles rename stalled: empty decode queue.
    pub stall_frontend: u64,
    /// Cycles rename stalled: ROB full.
    pub stall_rob_full: u64,
    /// Cycles rename stalled: issue queue full.
    pub stall_iq_full: u64,
    /// Cycles rename stalled: load or store queue full.
    pub stall_lsq_full: u64,
    /// Cycles rename stalled waiting for a mispredicted branch to resolve.
    pub stall_branch_resolve: u64,
    /// Mispredicted control transfers.
    pub mispredicts: u64,
    /// Memory-order violations (load issued past a conflicting store).
    pub violations: u64,
    /// Loads served by store-to-load forwarding.
    pub forwards: u64,
    /// Wrong-path loads/stores turned into prefetches while fetch was
    /// blocked on a mispredicted branch.
    pub wrong_path_prefetches: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Peak ROB occupancy.
    pub rob_high_water: usize,
}

/// Instructions the wrong-path phantom walk may consume per blocked
/// branch (see [`OooCore::phantom_walk`]).
const PHANTOM_LIMIT: usize = 64;

/// Why rename cannot accept an instruction this cycle — the stall counter
/// `tick` charges once per idle cycle. Shared by `next_event_cycle` and
/// `skip_to` so the two always agree.
enum RenameStall {
    /// Waiting for a mispredicted branch to resolve (with the phantom
    /// walk inert).
    BranchResolve,
    /// Decode queue empty.
    Frontend,
    /// Reorder buffer full.
    RobFull,
    /// Issue queue full.
    IqFull,
    /// Load or store queue full.
    LsqFull,
    /// Rename could act this cycle — no skip is safe.
    None,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EntryState {
    /// Waiting in the issue queue for its sources.
    Waiting,
    /// Executing; result ready at the given cycle.
    Issued(Cycle),
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: Seq,
    pc: u64,
    inst: Inst,
    state: EntryState,
    /// Physical sources (None = no register / always-ready).
    srcs: [Option<usize>; 2],
    dest_phys: Option<usize>,
    old_phys: Option<usize>,
    /// Future-file value of the destination before this instruction.
    old_future: u64,
    /// Architectural result (computed functionally at rename).
    value: Option<u64>,
    /// Memory operation: (addr, bytes, is_store, store value).
    mem: Option<(u64, u64, bool, u64)>,
    /// For executed loads: which store seq forwarded the value, if any.
    forwarded_from: Option<Seq>,
    /// Memory op has performed its access / resolved its address.
    mem_executed: bool,
    /// Control: resolved next PC differed from the prediction.
    mispredicted: bool,
    /// Resolved next PC for control instructions.
    actual_next: u64,
}

/// The out-of-order baseline core.
pub struct OooCore {
    cfg: OooConfig,
    id: usize,
    frontend: Frontend,
    /// Rename-time architectural values (future file).
    future: [u64; 64],
    /// Architectural-to-physical map.
    rat: [usize; 64],
    /// Physical-register readiness times.
    phys_ready: Vec<Cycle>,
    free: Vec<usize>,
    rob: VecDeque<RobEntry>,
    /// Window-occupancy counts, maintained incrementally at rename /
    /// issue / commit / squash. `rename` consults all three once per
    /// slot; re-deriving them by scanning the window each time dominated
    /// the tick cost on the 128-entry configs.
    n_waiting: usize,
    n_loads: usize,
    n_stores: usize,
    seq: Seq,
    cycle: Cycle,
    halted: bool,
    /// Renaming is blocked until the mispredicted branch at this seq
    /// executes and redirects fetch.
    fetch_blocked_on: Option<Seq>,
    /// Shadow register values and poison bits for the wrong-path phantom
    /// walk (see `phantom_walk`); live while renaming is blocked. A
    /// poisoned register holds a value that would not have arrived in time
    /// on the real wrong path (a missing load or its dependents).
    phantom: Option<([u64; 64], [bool; 64])>,
    /// Instructions consumed by the current phantom walk (bounded).
    phantom_count: usize,
    /// Cycles strictly before this one are vouched issue no-ops: after an
    /// issue scan, `issue_wake` bounds when the earliest waiting entry's
    /// sources can arrive, and nothing else advances readiness — rename
    /// (which adds entries) resets this to 0. Lets `tick` skip the
    /// O(window) scan while the window drains a long miss.
    issue_quiet_until: Cycle,
    /// Speculation-taint tracker (experiment E13); `None` unless
    /// [`OooConfig::taint`] is set, so the disabled path costs one
    /// discriminant test per hook.
    taint: Option<Box<TaintState>>,
    /// Typed event trace, present only while tracing is enabled
    /// (record-only: see the `sst-obs` event-sink contract). The OoO
    /// core has a single phase, so its track is one `normal` span plus
    /// ROB-occupancy samples.
    trace: Option<Box<TraceBuf>>,
    /// Host-side stage timers, present only while profiling is enabled.
    prof: Option<Box<HostTimes>>,
    commits: Vec<Commit>,
    /// Statistics.
    pub stats: OooStats,
}

impl OooCore {
    /// Creates a core with index `id` starting at `program.entry`. The
    /// caller loads the program image into the core's memory port.
    pub fn new(cfg: OooConfig, id: usize, program: &Program) -> OooCore {
        let phys_count = 64 + cfg.rob_entries;
        let mut free: Vec<usize> = (64..phys_count).rev().collect();
        free.shrink_to_fit();
        let taint = cfg.taint.then(|| Box::new(TaintState::new()));
        OooCore {
            frontend: Frontend::new(cfg.frontend, program),
            cfg,
            id,
            future: [0; 64],
            rat: std::array::from_fn(|i| i),
            phys_ready: vec![0; phys_count],
            free,
            rob: VecDeque::new(),
            n_waiting: 0,
            n_loads: 0,
            n_stores: 0,
            seq: 0,
            cycle: 0,
            halted: false,
            fetch_blocked_on: None,
            phantom: None,
            phantom_count: 0,
            issue_quiet_until: 0,
            taint,
            trace: None,
            prof: None,
            commits: Vec::new(),
            stats: OooStats::default(),
        }
    }

    /// The frontend (prediction statistics).
    pub fn frontend(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    /// Current future-file value of a register (tests).
    pub fn future_value(&self, r: Reg) -> u64 {
        self.future[r.index()]
    }

    /// Re-derives the incremental occupancy counts from the window.
    /// Debug builds assert this every tick; release builds never call it.
    fn counts_consistent(&self) -> bool {
        let waiting = self
            .rob
            .iter()
            .filter(|e| e.state == EntryState::Waiting)
            .count();
        let loads = self
            .rob
            .iter()
            .filter(|e| matches!(e.mem, Some((_, _, false, _))))
            .count();
        let stores = self
            .rob
            .iter()
            .filter(|e| matches!(e.mem, Some((_, _, true, _))))
            .count();
        self.n_waiting == waiting && self.n_loads == loads && self.n_stores == stores
    }

    // ------------------------------------------------------------- rename

    /// While fetch is blocked on a mispredicted branch, a real machine
    /// keeps fetching and executing down the wrong path; the useful side
    /// effect is prefetching (wrong-path loads frequently target
    /// correct-path data beyond a reconvergence point). This walk models
    /// that benefit *generously*: wrong-path instructions execute against
    /// shadow registers at zero timing cost, and their memory references
    /// become prefetches. Without it the OoO baseline would be unfairly
    /// denied a real machine's wrong-path prefetching.
    fn phantom_walk(&mut self, now: Cycle, mem: &mut MemBus) {
        /// A wrong-path load slower than this poisons its consumers: its
        /// data would not return before the mispredicted branch resolves.
        const POISON_LATENCY: u64 = 30;
        // Taint attributes every wrong-path touch to the blocking branch's
        // sequence number; the redirect sweeps that epoch.
        let bseq = self.fetch_blocked_on.unwrap_or(self.seq);
        let (shadow, poison) = self
            .phantom
            .get_or_insert((self.future, [false; 64]));
        for _ in 0..self.cfg.rename_width {
            if self.phantom_count >= PHANTOM_LIMIT {
                return;
            }
            let Some(f) = self.frontend.peek().copied() else {
                return;
            };
            if f.inst == Inst::Halt {
                return;
            }
            self.frontend.pop();
            self.phantom_count += 1;
            let inst = f.inst;
            let srcs = inst.sources();
            let s1 = srcs[0].map_or(0, |r| shadow[r.index()]);
            let s2 = srcs[1].map_or(0, |r| shadow[r.index()]);
            let any_poison = srcs
                .iter()
                .flatten()
                .any(|r| poison[r.index()]);
            match inst {
                Inst::Load {
                    width, signed, rd, ..
                } => {
                    if any_poison {
                        // Address chain is unavailable on the real wrong
                        // path: no prefetch, destination poisoned.
                        if !rd.is_zero() {
                            poison[rd.index()] = true;
                        }
                        continue;
                    }
                    let addr = mem_addr(inst, s1);
                    let out = mem.access_pc(now, AccessKind::Prefetch, addr, f.pc);
                    self.stats.wrong_path_prefetches += 1;
                    if let Some(t) = self.taint.as_mut() {
                        t.note_line(bseq, mem.block_of(addr));
                        t.note_training(bseq);
                    }
                    if out.level == sst_mem::HitLevel::Mem && out.latency(now) > POISON_LATENCY {
                        if !rd.is_zero() {
                            poison[rd.index()] = true;
                        }
                    } else if !rd.is_zero() {
                        let raw = mem.read(addr, width.bytes());
                        shadow[rd.index()] = extend_load(width, signed, raw);
                        poison[rd.index()] = false;
                    }
                }
                Inst::Store { .. } | Inst::Prefetch { .. } => {
                    if srcs[0].is_some_and(|r| poison[r.index()]) {
                        continue; // address unknown on the real wrong path
                    }
                    let addr = mem_addr(inst, s1);
                    mem.access_pc(now, AccessKind::Prefetch, addr, f.pc);
                    self.stats.wrong_path_prefetches += 1;
                    if let Some(t) = self.taint.as_mut() {
                        t.note_line(bseq, mem.block_of(addr));
                        t.note_training(bseq);
                    }
                }
                _ => {
                    let out = execute(inst, s1, s2, f.pc);
                    if let (Some(v), Some(rd)) = (out.value, inst.dest()) {
                        shadow[rd.index()] = v;
                        poison[rd.index()] = any_poison;
                    }
                    // Control flow follows the frontend's own predicted
                    // path (the queue was fetched that way).
                }
            }
        }
    }

    fn rename(&mut self, now: Cycle, mem: &mut MemBus) {
        if self.fetch_blocked_on.is_some() {
            self.stats.stall_branch_resolve += 1;
            self.phantom_walk(now, mem);
            return;
        }
        for slot in 0..self.cfg.rename_width {
            if self.halted {
                break;
            }
            let Some(f) = self.frontend.peek().copied() else {
                if slot == 0 {
                    self.stats.stall_frontend += 1;
                }
                break;
            };
            if self.rob.len() >= self.cfg.rob_entries {
                self.stats.stall_rob_full += 1;
                break;
            }
            if self.n_waiting >= self.cfg.iq_entries {
                self.stats.stall_iq_full += 1;
                break;
            }
            let inst = f.inst;
            if inst.is_load() && self.n_loads >= self.cfg.lq_entries {
                self.stats.stall_lsq_full += 1;
                break;
            }
            if inst.is_store() && self.n_stores >= self.cfg.sq_entries {
                self.stats.stall_lsq_full += 1;
                break;
            }

            self.frontend.pop();
            self.seq += 1;
            let seq = self.seq;

            // Physical sources.
            let srcs = inst.sources().map(|s| s.map(|r| self.rat[r.index()]));

            // Functional execution against the future file (rename order is
            // program order on the correct path, so these values are
            // architecturally exact).
            let s1 = inst.sources()[0].map_or(0, |r| self.future[r.index()]);
            let s2 = inst.sources()[1].map_or(0, |r| self.future[r.index()]);

            let mut value = None;
            let mut mem_info = None;
            let mut actual_next = f.pc.wrapping_add(4);
            let mut taken = false;
            match inst {
                Inst::Load {
                    width, signed, ..
                } => {
                    let addr = mem_addr(inst, s1);
                    // Architectural load value: backing memory (committed
                    // stores) overlaid with the in-flight store queue.
                    mem_info = Some((addr, width.bytes(), false, 0));
                    let raw = self.read_through_sq(mem, seq, addr, width.bytes());
                    value = Some(extend_load(width, signed, raw));
                }
                Inst::Store { width, .. } => {
                    let addr = mem_addr(inst, s1);
                    mem_info = Some((addr, width.bytes(), true, s2));
                }
                Inst::Prefetch { .. } => {
                    let addr = mem_addr(inst, s1);
                    mem_info = Some((addr, 1, false, 0));
                }
                Inst::Halt => {}
                _ => {
                    let out = execute(inst, s1, s2, f.pc);
                    value = out.value;
                    actual_next = out.next_pc;
                    taken = out.taken;
                }
            }

            // Rename the destination.
            let (dest_phys, old_phys, old_future) = match inst.dest() {
                Some(rd) => {
                    let p = self.free.pop().expect("phys regs cover ROB size");
                    let old = self.rat[rd.index()];
                    self.rat[rd.index()] = p;
                    let old_future = self.future[rd.index()];
                    self.future[rd.index()] =
                        value.expect("dest implies a value");
                    self.phys_ready[p] = Cycle::MAX; // until executed
                    (Some(p), Some(old), old_future)
                }
                None => (None, None, 0),
            };

            let mispredicted = inst.is_control() && actual_next != f.pred_next_pc;
            if inst.is_control() {
                self.frontend.resolve(f.pc, inst, taken, actual_next);
            }

            self.n_waiting += 1;
            match mem_info {
                Some((_, _, true, _)) => self.n_stores += 1,
                Some(_) => self.n_loads += 1,
                None => {}
            }
            self.rob.push_back(RobEntry {
                seq,
                pc: f.pc,
                inst,
                state: EntryState::Waiting,
                srcs,
                dest_phys,
                old_phys,
                old_future,
                value,
                mem: mem_info,
                forwarded_from: None,
                mem_executed: false,
                mispredicted,
                actual_next,
            });
            self.stats.rob_high_water = self.stats.rob_high_water.max(self.rob.len());
            // A fresh entry may be issuable immediately: drop the memo.
            self.issue_quiet_until = 0;

            if inst == Inst::Halt {
                // Stop consuming; the halt commits when it reaches the head.
                break;
            }
            if mispredicted {
                self.stats.mispredicts += 1;
                self.fetch_blocked_on = Some(seq);
                break;
            }
            let _ = now;
        }
    }

    /// The architectural bytes a load at `seq` reads: backing memory
    /// overlaid, in program order, with older in-flight (uncommitted)
    /// stores — whose values are known functionally at rename.
    fn read_through_sq(&self, mem: &MemBus, seq: Seq, addr: u64, bytes: u64) -> u64 {
        let mut buf = mem.mem().read_le(addr, bytes).to_le_bytes();
        // `self.rob` does not yet contain `seq` (called from rename), and
        // entries are program-ordered, so a simple forward walk applies
        // stores oldest-to-youngest. `remaining` stops the walk after the
        // youngest in-flight store (every store in the window is older
        // than the load being renamed).
        let mut remaining = self.n_stores;
        for e in self.rob.iter() {
            if remaining == 0 || e.seq >= seq {
                break;
            }
            let Some((saddr, sbytes, true, svalue)) = e.mem else {
                continue;
            };
            remaining -= 1;
            let s_end = saddr + sbytes;
            let l_end = addr + bytes;
            if addr >= s_end || saddr >= l_end {
                continue;
            }
            for i in 0..sbytes {
                let byte_addr = saddr + i;
                if byte_addr >= addr && byte_addr < l_end {
                    buf[(byte_addr - addr) as usize] = (svalue >> (8 * i)) as u8;
                }
            }
        }
        let raw = u64::from_le_bytes(buf);
        if bytes == 8 {
            raw
        } else {
            raw & ((1u64 << (bytes * 8)) - 1)
        }
    }

    // ------------------------------------------------------------- issue

    fn issue(&mut self, now: Cycle, mem: &mut MemBus) {
        let mut issued = 0;
        let mut mem_ops = 0;
        let mut squash_at: Option<(Seq, u64)> = None;
        let mut redirect: Option<(Cycle, u64)> = None;

        // Earliest source-arrival among still-waiting entries, collected
        // during the scan itself; on a zero-issue scan it becomes the
        // issue-quiet memo (no extra walk). Entries that are ready but
        // held back for another reason (port, store data) must retry next
        // cycle, so they pin the memo to "scan again".
        let mut wake = Cycle::MAX;
        let mut blocked_now = false;
        for idx in 0..self.rob.len() {
            if issued >= self.cfg.issue_width {
                blocked_now = true;
                break;
            }
            let e = &self.rob[idx];
            if e.state != EntryState::Waiting {
                continue;
            }
            // Source readiness.
            let ready = e
                .srcs
                .iter()
                .flatten()
                .map(|&p| self.phys_ready[p])
                .max()
                .unwrap_or(0);
            if ready > now {
                wake = wake.min(ready);
                continue;
            }

            let inst = e.inst;
            let is_mem = inst.is_mem();
            if is_mem && mem_ops >= self.cfg.dcache_ports {
                blocked_now = true;
                continue;
            }

            let done_at = match e.mem {
                Some((addr, bytes, false, _)) => {
                    // Load (or prefetch): forwarding / memory.
                    match self.lookup_forward(idx, addr, bytes) {
                        ForwardState::Forward(from) => {
                            self.stats.forwards += 1;
                            self.rob[idx].forwarded_from = Some(from);
                            now + 2
                        }
                        ForwardState::WaitData => {
                            blocked_now = true;
                            continue; // retry next cycle
                        }
                        ForwardState::Memory => {
                            mem_ops += 1;
                            let kind = if matches!(inst, Inst::Prefetch { .. }) {
                                AccessKind::Prefetch
                            } else {
                                AccessKind::Load
                            };
                            let out = mem.access_pc(now, kind, addr, self.rob[idx].pc);
                            out.ready_at.max(now + 1)
                        }
                    }
                }
                Some((addr, bytes, true, _)) => {
                    // Store: address+data resolved. Check younger executed
                    // loads for a memory-order violation.
                    if let Some(v) = self.find_violation(idx, addr, bytes) {
                        self.stats.violations += 1;
                        squash_at = Some(v);
                        self.rob[idx].mem_executed = true;
                        self.rob[idx].state = EntryState::Issued(now + 1);
                        self.n_waiting -= 1;
                        break;
                    }
                    now + 1
                }
                None => now + self.cfg.latency.of(inst),
            };

            self.n_waiting -= 1;
            let e = &mut self.rob[idx];
            e.state = EntryState::Issued(done_at);
            e.mem_executed = true;
            if let Some(p) = e.dest_phys {
                self.phys_ready[p] = done_at;
            }
            if e.mispredicted {
                redirect = Some((done_at, e.actual_next));
            }
            issued += 1;
            self.stats.issued += 1;
        }

        if let Some((done_at, target)) = redirect {
            // The wrong-path episode ends here: sweep whatever the phantom
            // walk left behind (lines, trainings) into a leakage record
            // before the walk state is torn down.
            if let (Some(t), Some(bseq)) = (self.taint.as_mut(), self.fetch_blocked_on) {
                t.sweep(bseq, now, false, mem, SquashCounts::default());
            }
            self.frontend.redirect(done_at, target);
            self.fetch_blocked_on = None;
            self.phantom = None;
            self.phantom_count = 0;
        }
        if let Some((seq, pc)) = squash_at {
            self.squash_from(now, seq, pc, mem);
        }

        // Nothing issued and nothing can retry sooner: the scan is a
        // provable no-op until `wake` (rename resets the memo when it adds
        // an entry). An issuing or blocked scan reruns next cycle.
        self.issue_quiet_until = if issued == 0 && !blocked_now && squash_at.is_none() {
            wake
        } else {
            0
        };
    }

    /// Forwarding decision for the load at window position `idx`.
    fn lookup_forward(&self, idx: usize, addr: u64, bytes: u64) -> ForwardState {
        if self.n_stores == 0 {
            return ForwardState::Memory;
        }
        // Youngest older overlapping store decides; only entries before
        // `idx` are older (the window is program-ordered).
        for e in self.rob.range(..idx).rev() {
            let Some((saddr, sbytes, true, _)) = e.mem else {
                continue;
            };
            let s_end = saddr + sbytes;
            let l_end = addr + bytes;
            if addr >= s_end || saddr >= l_end {
                continue;
            }
            let covers = saddr <= addr && l_end <= s_end;
            if e.mem_executed {
                if covers {
                    return ForwardState::Forward(e.seq);
                }
                // Partial overlap with a resolved store: wait for it to
                // drain (conservative but rare).
                return ForwardState::WaitData;
            }
            // Unresolved older store: speculate past it (aggressive
            // disambiguation); a violation squash fixes mistakes.
            return ForwardState::Memory;
        }
        ForwardState::Memory
    }

    /// A store at window position `idx` resolving `addr` checks younger
    /// executed loads that did not forward from it (or anything younger).
    fn find_violation(&self, idx: usize, addr: u64, bytes: u64) -> Option<(Seq, u64)> {
        if self.n_loads == 0 {
            return None;
        }
        let seq = self.rob[idx].seq;
        for e in self.rob.range(idx + 1..) {
            if !e.mem_executed {
                continue;
            }
            let Some((laddr, lbytes, false, _)) = e.mem else {
                continue;
            };
            let s_end = addr + bytes;
            let l_end = laddr + lbytes;
            if laddr >= s_end || addr >= l_end {
                continue;
            }
            match e.forwarded_from {
                Some(from) if from >= seq => continue, // saw this store or newer
                _ => return Some((e.seq, e.pc)),
            }
        }
        None
    }

    // ------------------------------------------------------------- squash

    /// Squashes every entry with `seq >= from` and refetches from `pc`.
    fn squash_from(&mut self, now: Cycle, from: Seq, pc: u64, mem: &mut MemBus) {
        while let Some(e) = self.rob.back() {
            if e.seq < from {
                break;
            }
            let e = self.rob.pop_back().expect("checked back");
            if e.state == EntryState::Waiting {
                self.n_waiting -= 1;
            }
            match e.mem {
                Some((_, _, true, _)) => self.n_stores -= 1,
                Some(_) => self.n_loads -= 1,
                None => {}
            }
            if let Some(t) = self.taint.as_mut() {
                // Squashed loads that went to memory (not forwarded) left
                // fills behind; squashed control already trained the
                // predictor at rename. Record both for the sweep below.
                if let Some((addr, _, false, _)) = e.mem {
                    if e.mem_executed && e.forwarded_from.is_none() {
                        t.note_line(e.seq, mem.block_of(addr));
                        t.note_training(e.seq);
                    }
                }
                if e.inst.is_control() {
                    t.note_predictor(e.seq);
                }
            }
            if let (Some(dest), Some(old)) = (e.dest_phys, e.old_phys) {
                let rd = e.inst.dest().expect("dest_phys implies dest");
                self.rat[rd.index()] = old;
                self.future[rd.index()] = e.old_future;
                self.free.push(dest);
            }
        }
        if let Some(t) = self.taint.as_mut() {
            t.sweep(from, now, false, mem, SquashCounts::default());
        }
        self.seq = from - 1;
        if self
            .fetch_blocked_on
            .is_some_and(|s| s >= from)
        {
            self.fetch_blocked_on = None;
            self.phantom = None;
            self.phantom_count = 0;
        }
        self.frontend.redirect(now + 1, pc);
    }

    // ------------------------------------------------------- idle wake-up

    /// Mirrors the slot-0 decision tree of [`OooCore::rename`] without side
    /// effects. A `Cycle::MAX` wake is a stall released only by fetch,
    /// issue, or commit — each covered by its own `next_event_cycle` term.
    fn rename_wake(&self, now: Cycle) -> (Cycle, RenameStall) {
        if self.fetch_blocked_on.is_some() {
            // The phantom walk does real (prefetching) work only while it
            // still has budget and a non-halt instruction to consume.
            let phantom_active = self.phantom_count < PHANTOM_LIMIT
                && self.frontend.peek().is_some_and(|f| f.inst != Inst::Halt);
            let wake = if phantom_active { now } else { Cycle::MAX };
            return (wake, RenameStall::BranchResolve);
        }
        let Some(f) = self.frontend.peek() else {
            return (Cycle::MAX, RenameStall::Frontend);
        };
        if self.rob.len() >= self.cfg.rob_entries {
            return (Cycle::MAX, RenameStall::RobFull);
        }
        if self.n_waiting >= self.cfg.iq_entries {
            return (Cycle::MAX, RenameStall::IqFull);
        }
        if f.inst.is_load() && self.n_loads >= self.cfg.lq_entries {
            return (Cycle::MAX, RenameStall::LsqFull);
        }
        if f.inst.is_store() && self.n_stores >= self.cfg.sq_entries {
            return (Cycle::MAX, RenameStall::LsqFull);
        }
        (now, RenameStall::None)
    }

    /// When the ROB head could commit: the head's completion time, or
    /// `Cycle::MAX` while it is still waiting to issue (the issue wake
    /// covers that) or the ROB is empty (the rename wake covers that).
    fn commit_wake(&self, now: Cycle) -> Cycle {
        match self.rob.front() {
            Some(e) => match e.state {
                EntryState::Issued(done_at) => done_at.max(now),
                EntryState::Waiting => Cycle::MAX,
            },
            None => Cycle::MAX,
        }
    }

    /// When the issue stage could next act: `now` if any waiting entry has
    /// timing-ready sources (ports or width may still hold it back — not
    /// skippable), else the earliest known source-ready time. Entries
    /// whose producer has not issued yet sit at `Cycle::MAX` readiness and
    /// are woken transitively through their producer's own wake.
    fn issue_wake(&self, now: Cycle) -> Cycle {
        let mut wake = Cycle::MAX;
        for e in &self.rob {
            if e.state != EntryState::Waiting {
                continue;
            }
            let ready = e
                .srcs
                .iter()
                .flatten()
                .map(|&p| self.phys_ready[p])
                .max()
                .unwrap_or(0);
            if ready <= now {
                return now;
            }
            wake = wake.min(ready);
        }
        wake
    }

    // ------------------------------------------------------------- commit

    fn commit(&mut self, now: Cycle, mem: &mut MemBus) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else {
                break;
            };
            let EntryState::Issued(done_at) = head.state else {
                break;
            };
            if done_at > now {
                break;
            }
            let e = self.rob.pop_front().expect("checked front");
            match e.mem {
                Some((_, _, true, _)) => self.n_stores -= 1,
                Some(_) => self.n_loads -= 1,
                None => {}
            }
            let mut store = None;
            if let Some((addr, bytes, true, value)) = e.mem {
                mem.access(now, AccessKind::Store, addr);
                mem.write(addr, bytes, value);
                store = Some((addr, bytes, value));
            }
            if let Some(t) = self.taint.as_mut() {
                // A committed access is architectural demand for its line:
                // it no longer counts toward the leaked footprint.
                if let Some((addr, _, _, _)) = e.mem {
                    t.note_architectural(mem.block_of(addr));
                }
            }
            if let Some(old) = e.old_phys {
                self.free.push(old);
            }
            let reg_write = match (e.inst.dest(), e.value) {
                (Some(rd), Some(v)) => Some((rd, v)),
                _ => None,
            };
            self.commits.push(Commit {
                seq: e.seq,
                pc: e.pc,
                inst: e.inst,
                reg_write,
                store,
                at: now,
            });
            if e.inst == Inst::Halt {
                self.halted = true;
                break;
            }
        }
    }
}

enum ForwardState {
    Forward(Seq),
    WaitData,
    Memory,
}

impl RobEntry {
    fn save_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.seq);
        w.put_u64(self.pc);
        w.put_u32(encode(self.inst).expect("renamed instruction re-encodes"));
        match self.state {
            EntryState::Waiting => w.put_u8(0),
            EntryState::Issued(done_at) => {
                w.put_u8(1);
                w.put_u64(done_at);
            }
        }
        for s in self.srcs {
            w.put_opt_u64(s.map(|p| p as u64));
        }
        w.put_opt_u64(self.dest_phys.map(|p| p as u64));
        w.put_opt_u64(self.old_phys.map(|p| p as u64));
        w.put_u64(self.old_future);
        w.put_opt_u64(self.value);
        match self.mem {
            Some((addr, bytes, is_store, value)) => {
                w.put_bool(true);
                w.put_u64(addr);
                w.put_u64(bytes);
                w.put_bool(is_store);
                w.put_u64(value);
            }
            None => w.put_bool(false),
        }
        w.put_opt_u64(self.forwarded_from);
        w.put_bool(self.mem_executed);
        w.put_bool(self.mispredicted);
        w.put_u64(self.actual_next);
    }

    /// Reads one window entry; physical-register indexes are validated
    /// against `phys_count` so corrupt input cannot index out of bounds.
    fn load(r: &mut SnapReader<'_>, phys_count: usize) -> Result<RobEntry, SnapError> {
        let take_phys = |r: &mut SnapReader<'_>| -> Result<Option<usize>, SnapError> {
            match r.take_opt_u64()? {
                None => Ok(None),
                Some(p) if (p as usize) < phys_count => Ok(Some(p as usize)),
                Some(p) => Err(SnapError::Corrupt(format!(
                    "physical register {p} out of range (count {phys_count})"
                ))),
            }
        };
        let seq = r.take_u64()?;
        let pc = r.take_u64()?;
        let word = r.take_u32()?;
        let inst = decode(word).map_err(|_| {
            SnapError::Corrupt(format!("undecodable window instruction {word:#010x}"))
        })?;
        let state = match r.take_u8()? {
            0 => EntryState::Waiting,
            1 => EntryState::Issued(r.take_u64()?),
            b => {
                return Err(SnapError::Corrupt(format!(
                    "invalid window-entry state byte {b}"
                )))
            }
        };
        let srcs = [take_phys(r)?, take_phys(r)?];
        let dest_phys = take_phys(r)?;
        let old_phys = take_phys(r)?;
        let old_future = r.take_u64()?;
        let value = r.take_opt_u64()?;
        let mem = if r.take_bool()? {
            let addr = r.take_u64()?;
            let bytes = r.take_u64()?;
            let is_store = r.take_bool()?;
            let value = r.take_u64()?;
            Some((addr, bytes, is_store, value))
        } else {
            None
        };
        Ok(RobEntry {
            seq,
            pc,
            inst,
            state,
            srcs,
            dest_phys,
            old_phys,
            old_future,
            value,
            mem,
            forwarded_from: r.take_opt_u64()?,
            mem_executed: r.take_bool()?,
            mispredicted: r.take_bool()?,
            actual_next: r.take_u64()?,
        })
    }
}

impl Core for OooCore {
    fn tick(&mut self, mem: &mut MemBus) {
        let now = self.cycle;
        self.cycle += 1;
        if let Some(tb) = self.trace.as_mut() {
            tb.set_phase(Phase::Normal, now);
            tb.sample_occupancy(now, self.rob.len() as u32, self.n_stores as u32);
        }
        if self.halted {
            return;
        }
        debug_assert!(self.counts_consistent());
        let t0 = HostTimes::start(&self.prof);
        self.frontend.tick(now, mem);
        HostTimes::stop(&mut self.prof, Stage::Fetch, t0);

        let t0 = HostTimes::start(&self.prof);
        self.commit(now, mem);
        if now >= self.issue_quiet_until {
            self.issue(now, mem);
        }
        HostTimes::stop(&mut self.prof, Stage::Issue, t0);

        let t0 = HostTimes::start(&self.prof);
        self.rename(now, mem);
        HostTimes::stop(&mut self.prof, Stage::Decode, t0);
    }

    fn cycle(&self) -> Cycle {
        self.cycle
    }

    fn retired(&self) -> u64 {
        self.seq
    }

    fn halted(&self) -> bool {
        self.halted
    }

    fn drain_commits_into(&mut self, out: &mut Vec<Commit>) {
        out.append(&mut self.commits);
    }

    fn next_event_cycle(&self) -> Cycle {
        let now = self.cycle;
        if self.halted {
            return Cycle::MAX;
        }
        // Cheap wakes first: on a busy cycle (the common case) one of
        // them returns `now` and the O(window) issue scan is skipped
        // entirely — this runs after every tick, so it must cost nothing
        // when there is nothing to skip.
        let fetch = self.frontend.next_fetch_cycle(now);
        if fetch <= now {
            return now;
        }
        let rename = self.rename_wake(now).0;
        if rename <= now {
            return now;
        }
        let commit = self.commit_wake(now);
        if commit <= now {
            return now;
        }
        fetch.min(rename).min(commit).min(self.issue_wake(now))
    }

    fn skip_to(&mut self, target: Cycle) {
        let from = self.cycle;
        debug_assert!(from < target && target <= self.next_event_cycle());
        let n = target - from;
        self.frontend.note_skipped(from, target);
        match self.rename_wake(from).1 {
            RenameStall::BranchResolve => self.stats.stall_branch_resolve += n,
            RenameStall::Frontend => self.stats.stall_frontend += n,
            RenameStall::RobFull => self.stats.stall_rob_full += n,
            RenameStall::IqFull => self.stats.stall_iq_full += n,
            RenameStall::LsqFull => self.stats.stall_lsq_full += n,
            RenameStall::None => debug_assert!(false, "skip_to with rename able to act"),
        }
        self.cycle = target;
    }

    fn gate_to(&mut self, target: Cycle) {
        // Clock gate (see the trait docs): no stall accounting, in-flight
        // absolute-cycle state ages across the gated window.
        self.cycle = self.cycle.max(target);
    }

    fn core_id(&self) -> usize {
        self.id
    }

    fn model_name(&self) -> &'static str {
        "out-of-order"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let bu = self.frontend.branch_unit_ref();
        vec![
            ("issued", self.stats.issued),
            ("stall_frontend", self.stats.stall_frontend),
            ("stall_rob_full", self.stats.stall_rob_full),
            ("stall_iq_full", self.stats.stall_iq_full),
            ("stall_lsq_full", self.stats.stall_lsq_full),
            ("stall_branch_resolve", self.stats.stall_branch_resolve),
            ("mispredicts", self.stats.mispredicts),
            ("violations", self.stats.violations),
            ("forwards", self.stats.forwards),
            ("wrong_path_prefetches", self.stats.wrong_path_prefetches),
            ("rob_high_water", self.stats.rob_high_water as u64),
            ("cond_predictions", bu.cond_predictions),
            ("cond_mispredictions", bu.cond_mispredictions),
        ]
    }

    fn leakage(&self) -> Option<&LeakageSummary> {
        self.taint.as_deref().map(|t| &t.summary)
    }

    fn set_trace(&mut self, on: bool) {
        if on {
            if self.trace.is_none() {
                self.trace = Some(Box::new(TraceBuf::new()));
            }
        } else {
            self.trace = None;
        }
    }

    fn take_trace(&mut self) -> Option<TraceBuf> {
        self.trace.take().map(|mut tb| {
            tb.close(self.cycle);
            *tb
        })
    }

    fn set_host_prof(&mut self, on: bool) {
        if on {
            if self.prof.is_none() {
                self.prof = Some(Box::new(HostTimes::new()));
            }
        } else {
            self.prof = None;
        }
    }

    fn host_times(&self) -> Option<&HostTimes> {
        self.prof.as_deref()
    }

    fn save_state(&self, w: &mut SnapWriter) -> Result<(), SnapError> {
        w.tag("OOOC");
        w.put_u64(self.cycle);
        w.put_u64(self.seq);
        w.put_bool(self.halted);
        w.put_opt_u64(self.fetch_blocked_on);
        w.put_usize(self.phantom_count);
        w.put_u64(self.issue_quiet_until);
        self.frontend.save_state(w);
        for v in self.future {
            w.put_u64(v);
        }
        for p in self.rat {
            w.put_u64(p as u64);
        }
        w.put_usize(self.phys_ready.len());
        for &t in &self.phys_ready {
            w.put_u64(t);
        }
        w.put_usize(self.free.len());
        for &p in &self.free {
            w.put_u64(p as u64);
        }
        w.put_usize(self.rob.len());
        for e in &self.rob {
            e.save_state(w);
        }
        match &self.phantom {
            Some((shadow, poison)) => {
                w.put_bool(true);
                for &v in shadow.iter() {
                    w.put_u64(v);
                }
                for &b in poison.iter() {
                    w.put_bool(b);
                }
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.commits.len());
        for c in &self.commits {
            c.save_state(w);
        }
        for v in [
            self.stats.stall_frontend,
            self.stats.stall_rob_full,
            self.stats.stall_iq_full,
            self.stats.stall_lsq_full,
            self.stats.stall_branch_resolve,
            self.stats.mispredicts,
            self.stats.violations,
            self.stats.forwards,
            self.stats.wrong_path_prefetches,
            self.stats.issued,
            self.stats.rob_high_water as u64,
        ] {
            w.put_u64(v);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let phys_count = self.phys_ready.len();
        r.tag("OOOC")?;
        let cycle = r.take_u64()?;
        let seq = r.take_u64()?;
        let halted = r.take_bool()?;
        let fetch_blocked_on = r.take_opt_u64()?;
        let phantom_count = r.take_usize()?;
        let issue_quiet_until = r.take_u64()?;
        self.frontend.restore_state(r)?;
        let mut future = [0u64; 64];
        for v in future.iter_mut() {
            *v = r.take_u64()?;
        }
        let mut rat = [0usize; 64];
        for p in rat.iter_mut() {
            let v = r.take_u64()? as usize;
            if v >= phys_count {
                return Err(SnapError::Corrupt(format!(
                    "RAT maps to physical register {v} out of range (count {phys_count})"
                )));
            }
            *p = v;
        }
        let n_phys = r.take_usize()?;
        if n_phys != phys_count {
            return Err(SnapError::Mismatch(format!(
                "physical register count {n_phys} != configured {phys_count}"
            )));
        }
        let mut phys_ready = vec![0u64; phys_count];
        for t in phys_ready.iter_mut() {
            *t = r.take_u64()?;
        }
        let n_free = r.take_usize()?;
        if n_free > phys_count {
            return Err(SnapError::Corrupt(format!(
                "free list length {n_free} exceeds physical count {phys_count}"
            )));
        }
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            let p = r.take_u64()? as usize;
            if p >= phys_count {
                return Err(SnapError::Corrupt(format!(
                    "free physical register {p} out of range (count {phys_count})"
                )));
            }
            free.push(p);
        }
        let n_rob = r.take_usize()?;
        if n_rob > self.cfg.rob_entries {
            return Err(SnapError::Corrupt(format!(
                "window occupancy {n_rob} exceeds {} entries",
                self.cfg.rob_entries
            )));
        }
        let mut rob = VecDeque::with_capacity(n_rob);
        for _ in 0..n_rob {
            rob.push_back(RobEntry::load(r, phys_count)?);
        }
        let phantom = if r.take_bool()? {
            let mut shadow = [0u64; 64];
            for v in shadow.iter_mut() {
                *v = r.take_u64()?;
            }
            let mut poison = [false; 64];
            for b in poison.iter_mut() {
                *b = r.take_bool()?;
            }
            Some((shadow, poison))
        } else {
            None
        };
        let n_commits = r.take_usize()?;
        self.commits.clear();
        for _ in 0..n_commits {
            self.commits.push(Commit::load(r)?);
        }
        let mut stats = OooStats::default();
        for slot in [
            &mut stats.stall_frontend,
            &mut stats.stall_rob_full,
            &mut stats.stall_iq_full,
            &mut stats.stall_lsq_full,
            &mut stats.stall_branch_resolve,
            &mut stats.mispredicts,
            &mut stats.violations,
            &mut stats.forwards,
            &mut stats.wrong_path_prefetches,
            &mut stats.issued,
        ] {
            *slot = r.take_u64()?;
        }
        stats.rob_high_water = r.take_u64()? as usize;
        // The occupancy counts are derived state: recompute them from the
        // restored window so they are consistent by construction (the
        // debug-build `counts_consistent` assertion would catch drift).
        self.n_waiting = rob
            .iter()
            .filter(|e| e.state == EntryState::Waiting)
            .count();
        self.n_loads = rob
            .iter()
            .filter(|e| matches!(e.mem, Some((_, _, false, _))))
            .count();
        self.n_stores = rob
            .iter()
            .filter(|e| matches!(e.mem, Some((_, _, true, _))))
            .count();
        self.cycle = cycle;
        self.seq = seq;
        self.halted = halted;
        self.fetch_blocked_on = fetch_blocked_on;
        self.phantom_count = phantom_count;
        self.issue_quiet_until = issue_quiet_until;
        self.future = future;
        self.rat = rat;
        self.phys_ready = phys_ready;
        self.free = free;
        self.rob = rob;
        self.phantom = phantom;
        self.stats = stats;
        Ok(())
    }

    fn warm_boot(&mut self, regs: &[u64; NUM_REGS], pc: u64) {
        let phys_count = self.phys_ready.len();
        self.rob.clear();
        self.free = (64..phys_count).rev().collect();
        self.rat = std::array::from_fn(|i| i);
        self.future = *regs;
        self.phys_ready.fill(0);
        self.n_waiting = 0;
        self.n_loads = 0;
        self.n_stores = 0;
        self.fetch_blocked_on = None;
        self.phantom = None;
        self.phantom_count = 0;
        self.issue_quiet_until = 0;
        self.halted = false;
        self.frontend.warm_reset(pc);
    }

    fn warm_predictor(&mut self, pc: u64, inst: Inst, taken: bool, next_pc: u64) {
        self.frontend.resolve(pc, inst, taken, next_pc);
    }
}
