//! # sst-ooo
//!
//! The out-of-order baseline the paper compares SST against: register
//! renaming (RAT + physical register file + free list), a reorder buffer,
//! a unified issue queue, and a load/store queue with store-to-load
//! forwarding and aggressive memory-disambiguation speculation (younger
//! loads may issue past older stores with unresolved addresses; violations
//! squash and refetch).
//!
//! These are precisely the structures SST's checkpoint architecture
//! eliminates, so this model's configuration knobs (ROB, issue queue, LSQ
//! sizes, widths) are the area/power cost axis of the study (experiment
//! E9), and its performance is the bar for the headline claim (E4).
//!
//! ## Modeling choices (favourable to the OoO baseline)
//!
//! * **No wrong-path pollution**: on a mispredicted branch the model stops
//!   renaming instead of executing wrong-path work, and restarts fetch when
//!   the branch executes (resolution-latency-accurate penalty without
//!   wrong-path cache/bandwidth interference).
//! * **Selective violation recovery**: a memory-order violation squashes
//!   from the offending load, not the whole pipeline.
//! * **Free forwarding**: store-to-load forwarding costs 2 cycles and no
//!   cache port.
//!
//! Because every favourable simplification helps the OoO side, the
//! SST-vs-OoO comparisons in the benchmark harness are conservative for
//! the paper's claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;

pub use crate::core::{OooConfig, OooCore, OooStats};
