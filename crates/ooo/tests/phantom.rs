//! Wrong-path phantom-prefetch behaviour: while fetch is blocked on a
//! mispredicted branch, independent future loads get prefetched, but
//! miss-dependent chains are poisoned (real wrong-path data would not
//! arrive in time).

use sst_isa::{Asm, Program, Reg};
use sst_mem::{MemConfig, MemSystem};
use sst_ooo::{OooConfig, OooCore};
use sst_uarch::Core;

fn run(p: &Program) -> (OooCore, MemSystem) {
    let mut mem = MemSystem::new(&MemConfig::default(), 1);
    p.load_into(mem.mem_mut());
    let mut core = OooCore::new(OooConfig::ooo_64(), 0, p);
    while !core.halted() && core.cycle() < 100_000_000 {
        core.tick(&mut mem.bus(0));
        core.drain_commits();
    }
    assert!(core.halted());
    (core, mem)
}

/// Mispredicted data-dependent branches in a loop whose future loads are
/// independent of the branch: the phantom walk must fire prefetches.
#[test]
fn wrong_path_prefetches_fire() {
    let mut a = Asm::new();
    let table = a.reserve(1 << 22);
    a.la(Reg::x(20), table);
    a.li(Reg::x(1), 88172645463325252u64 as i64);
    a.li(Reg::x(2), 400);
    let top = a.here();
    // xorshift -> random branch (mispredicts ~half the time)
    a.slli(Reg::x(3), Reg::x(1), 13);
    a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
    a.srli(Reg::x(3), Reg::x(1), 7);
    a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
    a.andi(Reg::x(4), Reg::x(1), 1);
    let skip = a.label();
    a.beq(Reg::x(4), Reg::ZERO, skip);
    a.addi(Reg::x(9), Reg::x(9), 1);
    a.bind(skip);
    // Independent far load (the wrong path can prefetch the next one).
    a.li(Reg::x(5), (1 << 22) - 8);
    a.and(Reg::x(6), Reg::x(1), Reg::x(5));
    a.add(Reg::x(6), Reg::x(6), Reg::x(20));
    a.ld(Reg::x(7), Reg::x(6), 0);
    a.add(Reg::x(8), Reg::x(8), Reg::x(7));
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();
    let p = a.finish().unwrap();
    let (core, _mem) = run(&p);
    assert!(core.stats.mispredicts > 50, "mispredicts: {}", core.stats.mispredicts);
    assert!(
        core.stats.wrong_path_prefetches > 50,
        "phantom walk fired: {}",
        core.stats.wrong_path_prefetches
    );
}

/// A miss-dependent pointer chain on the wrong path must NOT be fully
/// prefetched: the first hop misses and poisons the rest.
#[test]
fn dependent_chains_are_poisoned() {
    let mut a = Asm::new();
    // Build a 2-hop far chain per iteration, reached only after a
    // mispredicting branch.
    let stride = 1 << 20;
    let n = 64u64;
    let region = a.reserve(stride * (n + 2));
    // chain[i] -> chain[i+1], written by code.
    a.la(Reg::x(1), region);
    a.li(Reg::x(2), n as i64);
    a.li(Reg::x(3), stride as i64);
    let w = a.here();
    a.add(Reg::x(4), Reg::x(1), Reg::x(3));
    a.sd(Reg::x(4), Reg::x(1), 0);
    a.mv(Reg::x(1), Reg::x(4));
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, w);

    a.la(Reg::x(1), region);
    a.li(Reg::x(2), (n / 2) as i64);
    a.li(Reg::x(10), 88172645463325252u64 as i64);
    let top = a.here();
    a.slli(Reg::x(3), Reg::x(10), 13);
    a.xor(Reg::x(10), Reg::x(10), Reg::x(3));
    a.srli(Reg::x(3), Reg::x(10), 7);
    a.xor(Reg::x(10), Reg::x(10), Reg::x(3));
    a.andi(Reg::x(4), Reg::x(10), 1);
    let skip = a.label();
    a.beq(Reg::x(4), Reg::ZERO, skip);
    a.addi(Reg::x(9), Reg::x(9), 1);
    a.bind(skip);
    a.ld(Reg::x(1), Reg::x(1), 0); // dependent chase hop (misses)
    a.ld(Reg::x(5), Reg::x(1), 8); // depends on the missing hop
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();
    let p = a.finish().unwrap();
    let (core, mem) = run(&p);
    // The second-hop loads must not all have been prefetched: DRAM demand
    // reads remain comparable to the chase length.
    let st = mem.stats();
    assert!(st.dram_reads >= n / 2, "chase still pays: {}", st.dram_reads);
    assert!(core.retired() > 0);
}

/// Phantom state resets between mispredict episodes (no stale shadow
/// values leaking across redirects) — checked implicitly by cosim in
/// tests/cosim.rs; here we verify the machine completes and prefetch
/// counts stay bounded by the walk limit per episode.
#[test]
fn phantom_walk_is_bounded_per_episode() {
    let mut a = Asm::new();
    a.li(Reg::x(1), 88172645463325252u64 as i64);
    a.li(Reg::x(2), 100);
    let top = a.here();
    a.slli(Reg::x(3), Reg::x(1), 13);
    a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
    a.andi(Reg::x(4), Reg::x(1), 1);
    let skip = a.label();
    a.beq(Reg::x(4), Reg::ZERO, skip);
    a.addi(Reg::x(9), Reg::x(9), 1);
    a.bind(skip);
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, top);
    a.halt();
    let p = a.finish().unwrap();
    let (core, _mem) = run(&p);
    // No loads at all: the walk can never prefetch.
    assert_eq!(core.stats.wrong_path_prefetches, 0);
}
