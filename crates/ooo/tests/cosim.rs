//! Co-simulation of the out-of-order baseline against the functional
//! golden model, on the same adversarial programs used for the SST core:
//! pointer chases, store/load aliasing (forwarding and violations),
//! unpredictable branches, and calls.

use sst_isa::{Asm, Interp, Reg};
use sst_mem::{MemConfig, MemSystem};
use sst_ooo::{OooConfig, OooCore};
use sst_uarch::Core;

fn cosim(cfg: OooConfig, build: &dyn Fn(&mut Asm), max_cycles: u64) -> OooCore {
    let mut a = Asm::new();
    build(&mut a);
    let p = a.finish().unwrap();
    let mut mem = MemSystem::new(&MemConfig::default(), 1);
    p.load_into(mem.mem_mut());
    let mut core = OooCore::new(cfg, 0, &p);
    let mut interp = Interp::new(&p);
    let mut checked = 0u64;
    while !core.halted() && core.cycle() < max_cycles {
        core.tick(&mut mem.bus(0));
        for c in core.drain_commits() {
            let ev = interp.step().expect("interp ok");
            checked += 1;
            assert_eq!(c.seq, checked, "dense commit stream");
            assert_eq!(c.pc, ev.pc, "pc diverged at {checked}");
            assert_eq!(c.inst, ev.inst, "inst diverged at {checked}");
            assert_eq!(
                c.reg_write, ev.reg_write,
                "register write diverged at {checked} (pc {:#x})",
                c.pc
            );
        }
    }
    assert!(core.halted(), "did not finish (retired {})", core.retired());
    assert!(interp.is_halted());
    core
}

fn cosim_all(build: impl Fn(&mut Asm), max_cycles: u64) {
    for cfg in [OooConfig::ooo_32(), OooConfig::ooo_64(), OooConfig::ooo_128()] {
        let label = cfg.label();
        let b: &dyn Fn(&mut Asm) = &build;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cosim(cfg, b, max_cycles)))
            .unwrap_or_else(|e| panic!("{label} failed: {e:?}"));
    }
}

fn chase_with_work(a: &mut Asm) {
    let hops = 24u64;
    let stride = 1 << 20;
    let base = a.reserve(stride * (hops + 2));
    a.la(Reg::x(1), base);
    a.li(Reg::x(2), hops as i64);
    a.li(Reg::x(3), stride as i64);
    let w = a.here();
    a.add(Reg::x(4), Reg::x(1), Reg::x(3));
    a.sd(Reg::x(4), Reg::x(1), 0);
    a.sd(Reg::x(2), Reg::x(1), 8);
    a.mv(Reg::x(1), Reg::x(4));
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, w);
    a.la(Reg::x(1), base);
    a.li(Reg::x(2), hops as i64);
    a.li(Reg::x(10), 0);
    let c = a.here();
    a.ld(Reg::x(5), Reg::x(1), 8);
    a.add(Reg::x(10), Reg::x(10), Reg::x(5));
    a.ld(Reg::x(1), Reg::x(1), 0);
    a.addi(Reg::x(2), Reg::x(2), -1);
    a.bne(Reg::x(2), Reg::ZERO, c);
    a.halt();
}

#[test]
fn cosim_chase() {
    cosim_all(chase_with_work, 10_000_000);
}

#[test]
fn cosim_store_load_aliasing() {
    cosim_all(
        |a| {
            let buf = a.reserve(4096);
            a.la(Reg::x(1), buf);
            a.li(Reg::x(2), 300);
            a.li(Reg::x(10), 0);
            let top = a.here();
            // Same-address store/load pairs with varying widths.
            a.sd(Reg::x(2), Reg::x(1), 0);
            a.ld(Reg::x(3), Reg::x(1), 0);
            a.sw(Reg::x(3), Reg::x(1), 8);
            a.lw(Reg::x(4), Reg::x(1), 8);
            a.sb(Reg::x(4), Reg::x(1), 16);
            a.lbu(Reg::x(5), Reg::x(1), 16);
            a.add(Reg::x(10), Reg::x(10), Reg::x(5));
            a.addi(Reg::x(1), Reg::x(1), 8);
            a.andi(Reg::x(6), Reg::x(2), 511);
            a.la(Reg::x(7), buf);
            a.add(Reg::x(1), Reg::x(7), Reg::x(6));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, top);
            a.halt();
        },
        10_000_000,
    );
}

/// Address computed through a missing load gates a store, followed by a
/// load of the same address: exercises disambiguation speculation and the
/// violation squash path.
#[test]
fn cosim_violation_path() {
    let build = |a: &mut Asm| {
        let stride = 1 << 20;
        let n = 16u64;
        let table = a.reserve(stride * (n + 1));
        let out = a.reserve(4096);
        a.la(Reg::x(1), table);
        a.li(Reg::x(2), n as i64);
        a.li(Reg::x(5), 0);
        let w = a.here();
        a.sd(Reg::x(5), Reg::x(1), 0);
        a.li(Reg::x(6), stride as i64);
        a.add(Reg::x(1), Reg::x(1), Reg::x(6));
        a.addi(Reg::x(5), Reg::x(5), 8);
        a.addi(Reg::x(2), Reg::x(2), -1);
        a.bne(Reg::x(2), Reg::ZERO, w);
        a.la(Reg::x(1), table);
        a.la(Reg::x(3), out);
        a.li(Reg::x(2), n as i64);
        a.li(Reg::x(10), 0);
        let c = a.here();
        a.ld(Reg::x(4), Reg::x(1), 0); // miss: store addr unknown for a while
        a.add(Reg::x(6), Reg::x(3), Reg::x(4));
        a.li(Reg::x(7), 99);
        a.sd(Reg::x(7), Reg::x(6), 0); // slow-to-resolve store
        a.ld(Reg::x(8), Reg::x(3), 0); // may alias (when x4 == 0)
        a.add(Reg::x(10), Reg::x(10), Reg::x(8));
        a.li(Reg::x(9), stride as i64);
        a.add(Reg::x(1), Reg::x(1), Reg::x(9));
        a.addi(Reg::x(2), Reg::x(2), -1);
        a.bne(Reg::x(2), Reg::ZERO, c);
        a.halt();
    };
    cosim_all(build, 10_000_000);
}

#[test]
fn cosim_branchy_and_calls() {
    cosim_all(
        |a| {
            a.li(Reg::x(1), 88172645463325252u64 as i64);
            a.li(Reg::x(2), 500);
            a.li(Reg::x(10), 0);
            let helper = a.label();
            let top = a.here();
            a.slli(Reg::x(3), Reg::x(1), 13);
            a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
            a.srli(Reg::x(3), Reg::x(1), 7);
            a.xor(Reg::x(1), Reg::x(1), Reg::x(3));
            a.andi(Reg::x(4), Reg::x(1), 1);
            let skip = a.label();
            a.beq(Reg::x(4), Reg::ZERO, skip);
            a.call(helper);
            a.bind(skip);
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, top);
            a.halt();
            a.bind(helper);
            a.addi(Reg::x(10), Reg::x(10), 7);
            a.mul(Reg::x(11), Reg::x(10), Reg::x(10));
            a.ret();
        },
        10_000_000,
    );
}

#[test]
fn ooo_overlaps_independent_misses_better_than_window_allows_dependent() {
    // Independent misses: a 32-entry window covers several.
    let mut a = Asm::new();
    chase_with_work(&mut a);
    let p = a.finish().unwrap();
    let mut mem = MemSystem::new(&MemConfig::default(), 1);
    p.load_into(mem.mem_mut());
    let mut core = OooCore::new(OooConfig::ooo_64(), 0, &p);
    while !core.halted() && core.cycle() < 10_000_000 {
        core.tick(&mut mem.bus(0));
    }
    assert!(core.halted());
    assert!(core.stats.issued > 0);
    assert!(core.stats.rob_high_water > 8, "window actually fills");
}

#[test]
fn forwarding_happens() {
    let core = cosim(
        OooConfig::ooo_64(),
        &|a: &mut Asm| {
            let buf = a.reserve(64);
            a.la(Reg::x(1), buf);
            a.li(Reg::x(2), 100);
            let top = a.here();
            a.sd(Reg::x(2), Reg::x(1), 0);
            a.ld(Reg::x(3), Reg::x(1), 0); // back-to-back: forwards
            a.add(Reg::x(4), Reg::x(4), Reg::x(3));
            a.addi(Reg::x(2), Reg::x(2), -1);
            a.bne(Reg::x(2), Reg::ZERO, top);
            a.halt();
        },
        1_000_000,
    );
    assert!(core.stats.forwards > 50, "forwards: {}", core.stats.forwards);
}
