//! Snapshot/resume equivalence and robustness.
//!
//! The contract under test: pausing any run at an arbitrary instruction
//! count, serializing it, and resuming on a freshly built system is
//! indistinguishable from never having paused — same [`RunResult`], and
//! the same final snapshot bytes. Alongside, the robustness half:
//! serialize → restore → re-serialize is byte-identical, and truncated,
//! corrupted, or mismatched snapshots come back as structured errors,
//! never panics.

use sst_sim::{CoreModel, RunResult, Snapshot, System};
use sst_workloads::{Scale, Workload};

const MAX_CYCLES: u64 = 200_000_000;

fn models() -> Vec<CoreModel> {
    vec![
        CoreModel::InOrder,
        CoreModel::Scout,
        CoreModel::ExecuteAhead,
        CoreModel::Sst,
        CoreModel::Ooo32,
    ]
}

fn build(model: &CoreModel, w: &Workload, fast_forward: bool) -> System {
    let sys = System::new(model.clone(), w);
    if fast_forward {
        sys
    } else {
        sys.without_fast_forward()
    }
}

/// Runs (model, workload) twice — once straight through, once paused at
/// the midpoint via snapshot/resume — and demands identical results and
/// identical final state bytes.
fn check_equivalence(model: CoreModel, w: &Workload, fast_forward: bool) -> RunResult {
    let label = format!(
        "{} on {} (ff={fast_forward})",
        model.label(),
        w.name
    );

    // Reference: uninterrupted run.
    let mut straight = build(&model, w, fast_forward);
    straight
        .run_insts(u64::MAX, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let want = straight.result();
    let final_want = straight.snapshot().unwrap();

    // Paused run: stop at the midpoint, serialize, resume on a fresh
    // system, finish.
    let mid = want.insts / 2;
    let mut first_half = build(&model, w, fast_forward);
    first_half
        .run_insts(mid, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(!first_half.halted(), "{label}: midpoint must be mid-run");
    let snap = first_half.snapshot().unwrap();

    // Round-trip determinism: restoring and immediately re-serializing
    // reproduces the bytes exactly.
    let resumed_now = System::resume(model.clone(), w, &snap)
        .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
    let resnap = resumed_now.snapshot().unwrap();
    assert_eq!(
        snap.as_bytes(),
        resnap.as_bytes(),
        "{label}: restore + re-serialize must be byte-identical"
    );

    let header = snap.header().unwrap();
    assert_eq!(header.model, model.label());
    assert_eq!(header.workload, w.name);
    assert_eq!(header.insts, first_half.committed());

    let mut resumed = System::resume(model.clone(), w, &snap)
        .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
    if !fast_forward {
        resumed = resumed.without_fast_forward();
    }
    resumed
        .run_insts(u64::MAX, MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label}: resumed run diverged: {e}"));
    let got = resumed.result();

    assert_eq!(got, want, "{label}: resumed result differs");
    let final_got = resumed.snapshot().unwrap();
    assert_eq!(
        final_want.as_bytes(),
        final_got.as_bytes(),
        "{label}: final machine state differs after resume"
    );
    want
}

#[test]
fn resume_matches_uninterrupted_all_models_oltp() {
    let w = Workload::by_name("oltp", Scale::Smoke, 3).unwrap();
    for m in models() {
        check_equivalence(m, &w, true);
    }
}

#[test]
fn resume_matches_uninterrupted_all_models_erp() {
    let w = Workload::by_name("erp", Scale::Smoke, 3).unwrap();
    for m in models() {
        check_equivalence(m, &w, true);
    }
}

#[test]
fn resume_matches_uninterrupted_all_models_gzip() {
    let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
    for m in models() {
        check_equivalence(m, &w, true);
    }
}

#[test]
fn resume_matches_without_fast_forward() {
    // Fast-forward off exercises the cycle-by-cycle tick path; one
    // workload covers it for every model (ff never changes results,
    // which crates/sim/tests/fastforward.rs pins separately).
    let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
    for m in models() {
        check_equivalence(m, &w, false);
    }
}

#[test]
fn resume_rejects_model_and_workload_mismatch() {
    let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
    let mut sys = System::new(CoreModel::InOrder, &w);
    sys.run_insts(500, MAX_CYCLES).unwrap();
    let snap = sys.snapshot().unwrap();

    let e = System::resume(CoreModel::Sst, &w, &snap).map(|_| ()).unwrap_err();
    assert!(e.to_string().contains("model"), "{e}");

    let other = Workload::by_name("erp", Scale::Smoke, 3).unwrap();
    let e = System::resume(CoreModel::InOrder, &other, &snap)
        .map(|_| ())
        .unwrap_err();
    assert!(e.to_string().contains("workload"), "{e}");
}

#[test]
fn truncated_snapshots_error_not_panic() {
    let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
    let mut sys = System::new(CoreModel::Sst, &w);
    sys.run_insts(500, MAX_CYCLES).unwrap();
    let bytes = sys.snapshot().unwrap().as_bytes().to_vec();

    let cuts = [0, 1, 3, 7, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1];
    for &cut in &cuts {
        let truncated = Snapshot::from_bytes(bytes[..cut].to_vec());
        let r = System::resume(CoreModel::Sst, &w, &truncated);
        assert!(r.is_err(), "truncation at {cut}/{} must fail", bytes.len());
    }
    // Trailing garbage is also rejected (the reader must be fully
    // consumed).
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 9]);
    assert!(System::resume(CoreModel::Sst, &w, &Snapshot::from_bytes(padded)).is_err());
}

#[test]
fn corrupted_snapshots_never_panic() {
    let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
    let mut sys = System::new(CoreModel::Sst, &w);
    sys.run_insts(500, MAX_CYCLES).unwrap();
    let bytes = sys.snapshot().unwrap().as_bytes().to_vec();

    // Flip a byte at a spread of offsets across the image. A flip may
    // produce a different-but-valid state (a register value changed) —
    // that restores fine; what must never happen is a panic or an
    // unchecked huge allocation.
    let step = (bytes.len() / 257).max(1);
    for off in (0..bytes.len()).step_by(step) {
        let mut corrupt = bytes.clone();
        corrupt[off] ^= 0xa5;
        let _ = System::resume(CoreModel::Sst, &w, &Snapshot::from_bytes(corrupt));
    }
    // Length-field attacks: overwrite a mid-stream word with u64::MAX.
    for off in [64usize, 256, 1024] {
        if off + 8 <= bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            let _ = System::resume(CoreModel::Sst, &w, &Snapshot::from_bytes(corrupt));
        }
    }
}
