//! Thread-count equivalence suite.
//!
//! The parallel CMP driver must be invisible in every architected
//! result: for each core model and workload mix, runs at `--threads`
//! 1, 2, and 8 must produce byte-identical `CmpResult`s — per-core
//! cycles and instruction counts, the makespan, and the full shared
//! memory statistics — with idle-cycle fast-forwarding both enabled
//! and disabled. This is the same invariant the fast-forward suite
//! established for skipping, extended across the thread axis: thread
//! count is a wall-clock knob, never a model input.
//!
//! Two mixes per model: a heterogeneous four-slot mix and a
//! memory-bound homogeneous `erp` chip (maximal shared-L2 contention,
//! therefore maximal cross-thread arbitration traffic).

use sst_mem::MemConfig;
use sst_sim::{CmpSystem, CoreModel};
use sst_workloads::Scale;

const MAX_CYCLES: u64 = 400_000_000;
const THREADS: [usize; 2] = [2, 8];

fn build(model: &CoreModel, mix: &[&str]) -> CmpSystem {
    CmpSystem::mix(model.clone(), mix, Scale::Smoke, 7, &MemConfig::default())
}

fn assert_thread_invariant(model: CoreModel, mix: &[&str]) {
    let label = model.label();
    for fast_forward in [true, false] {
        let ff = |s: CmpSystem| {
            if fast_forward {
                s
            } else {
                s.without_fast_forward()
            }
        };
        let serial = ff(build(&model, mix)).run(MAX_CYCLES);
        for threads in THREADS {
            let parallel = ff(build(&model, mix)).with_threads(threads).run(MAX_CYCLES);
            assert_eq!(
                serial, parallel,
                "{label} on {mix:?}: threads={threads} fast_forward={fast_forward} \
                 diverged from the serial run"
            );
        }
    }
}

/// The five pipeline architectures of the study (the bench lineup):
/// in-order, scout, execute-ahead, SST, and the large out-of-order.
fn models() -> Vec<CoreModel> {
    vec![
        CoreModel::InOrder,
        CoreModel::Scout,
        CoreModel::ExecuteAhead,
        CoreModel::Sst,
        CoreModel::Ooo128,
    ]
}

const HETERO_MIX: [&str; 4] = ["gzip", "erp", "oltp", "gzip"];
const ERP_CHIP: [&str; 4] = ["erp", "erp", "erp", "erp"];

#[test]
fn inorder_matches_across_thread_counts() {
    assert_thread_invariant(CoreModel::InOrder, &HETERO_MIX);
    assert_thread_invariant(CoreModel::InOrder, &ERP_CHIP);
}

#[test]
fn scout_matches_across_thread_counts() {
    assert_thread_invariant(CoreModel::Scout, &HETERO_MIX);
    assert_thread_invariant(CoreModel::Scout, &ERP_CHIP);
}

#[test]
fn execute_ahead_matches_across_thread_counts() {
    assert_thread_invariant(CoreModel::ExecuteAhead, &HETERO_MIX);
    assert_thread_invariant(CoreModel::ExecuteAhead, &ERP_CHIP);
}

#[test]
fn sst_matches_across_thread_counts() {
    assert_thread_invariant(CoreModel::Sst, &HETERO_MIX);
    assert_thread_invariant(CoreModel::Sst, &ERP_CHIP);
}

#[test]
fn ooo128_matches_across_thread_counts() {
    assert_thread_invariant(CoreModel::Ooo128, &HETERO_MIX);
    assert_thread_invariant(CoreModel::Ooo128, &ERP_CHIP);
}

/// More worker threads than cores degenerates to one core per chunk;
/// still identical.
#[test]
fn more_threads_than_cores_is_fine() {
    for m in models() {
        let serial = build(&m, &["gzip", "erp"]).run(MAX_CYCLES);
        let over = build(&m, &["gzip", "erp"]).with_threads(8).run(MAX_CYCLES);
        assert_eq!(serial, over, "{}", m.label());
    }
}
