//! Tracing zero-cost equivalence suite (the observability layer's
//! contract, mirroring `taint_equiv.rs`).
//!
//! Event tracing and host-side self-profiling are purely observational:
//! they may allocate their own rings and timers, but they must never
//! touch timing, architectural state, counters, or memory-system
//! statistics. Traces are reported exclusively through
//! `System::run_with_trace` (and host times through
//! `System::run_with_profile`) — never through `RunResult` — precisely
//! so this suite can demand *byte-identical* results with tracing on
//! and off.
//!
//! Covered: all five compared models (in-order / scout / execute-ahead /
//! SST / OoO) on a replay-heavy commercial workload and on the E13
//! gadget whose rollback churn stresses every sweep path. Co-simulation
//! stays on, so commit streams are also checked instruction by
//! instruction. The suite additionally pins the per-phase accounting
//! invariant: the `RunResult::phases` rows sum exactly to total cycles.

use sst_sim::{CoreModel, System};
use sst_workloads::{Scale, Workload};

const MAX_CYCLES: u64 = 200_000_000;
const WORKLOADS: [&str; 2] = ["oltp", "g_bcb"];
const MODELS: [CoreModel; 5] = [
    CoreModel::InOrder,
    CoreModel::Scout,
    CoreModel::ExecuteAhead,
    CoreModel::Sst,
    CoreModel::Ooo32,
];

fn workload(name: &str) -> Workload {
    Workload::by_name(name, Scale::Smoke, 3).unwrap()
}

fn run_plain(model: CoreModel, wname: &str) -> sst_sim::RunResult {
    let label = model.label();
    System::new(model, &workload(wname))
        .run_checked(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} on {wname} (trace off): {e}"))
}

#[test]
fn trace_on_is_byte_identical() {
    for wname in WORKLOADS {
        for model in MODELS {
            let label = model.label();
            let a = run_plain(model.clone(), wname);
            let (b, trace) = System::new(model, &workload(wname))
                .with_tracing()
                .run_with_trace(MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{label} on {wname} (trace on): {e}"));
            assert_eq!(a, b, "{label} on {wname}: trace on/off runs diverged");
            let core = trace.core.expect("tracing was enabled");
            assert!(!core.is_empty(), "{label} on {wname}: core ring is empty");
        }
    }
}

#[test]
fn host_profiling_on_is_byte_identical() {
    for wname in WORKLOADS {
        for model in MODELS {
            let label = model.label();
            let a = run_plain(model.clone(), wname);
            let (b, times) = System::new(model, &workload(wname))
                .with_host_prof()
                .run_with_profile(MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{label} on {wname} (prof on): {e}"));
            assert_eq!(a, b, "{label} on {wname}: profiling on/off runs diverged");
            let times = times.expect("profiling was enabled");
            assert!(
                times.total_ns() > 0,
                "{label} on {wname}: profiled run recorded no time"
            );
        }
    }
}

/// Every cycle the run took lands in exactly one phase row — the table
/// is a partition of the timeline, not a sample.
#[test]
fn phase_rows_sum_to_total_cycles() {
    for wname in WORKLOADS {
        for model in MODELS {
            let label = model.label();
            let r = run_plain(model, wname);
            let total: u64 = r.phases.iter().map(|&(_, v)| v).sum();
            assert_eq!(
                total, r.cycles,
                "{label} on {wname}: phase rows sum to {total}, run took {} cycles",
                r.cycles
            );
            assert!(
                !r.phases.is_empty(),
                "{label} on {wname}: no phase rows in RunResult"
            );
        }
    }
}
