//! Taint-tracking zero-cost equivalence suite (experiment E13).
//!
//! Speculation-taint tracking is purely observational: it may allocate
//! its own bookkeeping, but it must never touch timing, architectural
//! state, counters, or memory-system statistics. Leakage is reported
//! exclusively through `System::run_with_leakage` — never through
//! `RunResult` — precisely so this suite can demand *byte-identical*
//! results with taint on and off.
//!
//! Covered: every speculating model (scout / execute-ahead / SST / OoO)
//! on a replay-heavy commercial workload and on the E13 gadget whose
//! rollback churn stresses every sweep path. Co-simulation stays on, so
//! commit streams are also checked instruction by instruction.

use sst_core::SstConfig;
use sst_ooo::OooConfig;
use sst_sim::{CoreModel, System};
use sst_workloads::{Scale, Workload};

const MAX_CYCLES: u64 = 200_000_000;
const WORKLOADS: [&str; 2] = ["oltp", "g_bcb"];

fn run(model: CoreModel, workload: &str, what: &str) -> sst_sim::RunResult {
    let w = Workload::by_name(workload, Scale::Smoke, 3).unwrap();
    let label = model.label();
    System::new(model, &w)
        .run_checked(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} on {workload} ({what}): {e}"))
}

#[test]
fn sst_family_taint_on_is_byte_identical() {
    for workload in WORKLOADS {
        for base in [
            SstConfig::scout(),
            SstConfig::execute_ahead(),
            SstConfig::sst(),
        ] {
            let tainted = SstConfig {
                taint: true,
                ..base.clone()
            };
            let label = base.label();
            let a = run(CoreModel::CustomSst(base), workload, "taint off");
            let b = run(CoreModel::CustomSst(tainted), workload, "taint on");
            assert_eq!(a, b, "{label} on {workload}: taint on/off runs diverged");
        }
    }
}

#[test]
fn ooo_taint_on_is_byte_identical() {
    for workload in WORKLOADS {
        let tainted = OooConfig {
            taint: true,
            ..OooConfig::ooo_32()
        };
        let a = run(CoreModel::Ooo32, workload, "taint off");
        let b = run(CoreModel::CustomOoo(tainted), workload, "taint on");
        assert_eq!(a, b, "ooo-32 on {workload}: taint on/off runs diverged");
    }
}

/// The named (non-custom) models are the taint-off baseline: a custom
/// config with only `taint: true` flipped must match them exactly.
#[test]
fn named_models_match_their_tainted_customs() {
    let pairs: [(CoreModel, CoreModel); 2] = [
        (
            CoreModel::Sst,
            CoreModel::CustomSst(SstConfig {
                taint: true,
                ..SstConfig::sst()
            }),
        ),
        (
            CoreModel::Scout,
            CoreModel::CustomSst(SstConfig {
                taint: true,
                ..SstConfig::scout()
            }),
        ),
    ];
    for (named, tainted) in pairs {
        let label = named.label();
        let a = run(named, "g_store", "named");
        let b = run(tainted, "g_store", "tainted custom");
        assert_eq!(a, b, "{label} on g_store: tainted custom diverged");
    }
}
