//! Fast-forward equivalence suite.
//!
//! Idle-cycle skipping must be invisible in every architected result:
//! for each core model, a run with fast-forwarding enabled and one with
//! it disabled must produce byte-identical `RunResult`s — cycles, commit
//! counts, warm-up accounting, every model counter, the full memory
//! statistics, and the instruction mix. Co-simulation stays on, so the
//! commit streams are also checked instruction by instruction.

use sst_mem::MemConfig;
use sst_sim::{CmpSystem, CoreModel, System};
use sst_workloads::{Scale, Workload};

const MAX_CYCLES: u64 = 200_000_000;

fn assert_equivalent(model: CoreModel, workload: &str) {
    let w = Workload::by_name(workload, Scale::Smoke, 3).unwrap();
    let label = model.label();
    let fast = System::new(model.clone(), &w)
        .run_checked(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} on {workload} (fast-forward): {e}"));
    let slow = System::new(model, &w)
        .without_fast_forward()
        .run_checked(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} on {workload} (cycle-by-cycle): {e}"));
    assert_eq!(
        fast, slow,
        "{label} on {workload}: skipped and unskipped runs diverged"
    );
}

#[test]
fn every_model_matches_on_gzip() {
    for m in CoreModel::lineup() {
        assert_equivalent(m, "gzip");
    }
}

#[test]
fn every_model_matches_on_erp() {
    for m in CoreModel::lineup() {
        assert_equivalent(m, "erp");
    }
}

#[test]
fn cmp_lockstep_skip_matches() {
    for model in [CoreModel::InOrder, CoreModel::Sst] {
        let build = || {
            CmpSystem::mix(
                model.clone(),
                &["gzip", "erp"],
                Scale::Smoke,
                7,
                &MemConfig::default(),
            )
        };
        let fast = build().run(MAX_CYCLES);
        let slow = build().without_fast_forward().run(MAX_CYCLES);
        assert_eq!(
            fast,
            slow,
            "{}: CMP skipped and unskipped runs diverged",
            model.label()
        );
    }
}

/// A tiny budget must time out at the same point whether or not skipping
/// is enabled (the skip target is clamped to the budget).
#[test]
fn timeout_fires_identically() {
    let w = Workload::by_name("oltp", Scale::Smoke, 3).unwrap();
    let fast = System::new(CoreModel::InOrder, &w).run_checked(100).unwrap_err();
    let slow = System::new(CoreModel::InOrder, &w)
        .without_fast_forward()
        .run_checked(100)
        .unwrap_err();
    assert_eq!(fast.at, slow.at);
    assert_eq!(fast.what, slow.what);
}
