//! Decode-cache and event-wakeup equivalence suite.
//!
//! Two hot-loop mechanisms must be architecturally invisible:
//!
//! * the frontend's **decode-once instruction cache** only memoizes the
//!   functional `read + decode` of text-segment PCs (the I-cache timing
//!   access per line is unchanged), and
//! * the SST cores' **event-driven replay wakeup** only changes what
//!   window `next_event_cycle` vouches to the fast-forward driver, never
//!   the replay schedule itself.
//!
//! For the bench lineup (all five models) on two workloads — `gzip`
//! (compute-heavy) and `oltp` (the replay-heavy pointer-chaser that
//! motivated both mechanisms) — a run with each mechanism disabled must
//! produce a byte-identical `RunResult`: cycles, commits, every model
//! counter, the memory statistics, the instruction mix. Co-simulation
//! stays on, so commit streams are also checked instruction by
//! instruction.

use sst_core::SstConfig;
use sst_inorder::InOrderConfig;
use sst_ooo::OooConfig;
use sst_sim::{CoreModel, System};
use sst_workloads::{Scale, Workload};

const MAX_CYCLES: u64 = 200_000_000;
const WORKLOADS: [&str; 2] = ["gzip", "oltp"];

/// The bench lineup (`io`, `scout`, `ea`, `sst`, `o128`) with every
/// frontend's decode cache forced to the given setting.
fn bench_lineup(decode_cache: bool) -> Vec<CoreModel> {
    let mut io = InOrderConfig::default();
    io.frontend.decode_cache = decode_cache;
    let mut o128 = OooConfig::ooo_128();
    o128.frontend.decode_cache = decode_cache;
    let sst_family = [
        SstConfig::scout(),
        SstConfig::execute_ahead(),
        SstConfig::sst(),
    ]
    .map(|mut c| {
        c.frontend.decode_cache = decode_cache;
        CoreModel::CustomSst(c)
    });
    let mut out = vec![CoreModel::CustomInOrder(io)];
    out.extend(sst_family);
    out.push(CoreModel::CustomOoo(o128));
    out
}

fn run(model: CoreModel, workload: &str, what: &str) -> sst_sim::RunResult {
    let w = Workload::by_name(workload, Scale::Smoke, 3).unwrap();
    let label = model.label();
    System::new(model, &w)
        .run_checked(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{label} on {workload} ({what}): {e}"))
}

#[test]
fn decode_cache_off_is_byte_identical() {
    for workload in WORKLOADS {
        let on = bench_lineup(true);
        let off = bench_lineup(false);
        for (m_on, m_off) in on.into_iter().zip(off) {
            let label = m_on.label();
            let a = run(m_on, workload, "decode cache on");
            let b = run(m_off, workload, "decode cache off");
            assert_eq!(
                a, b,
                "{label} on {workload}: decode cache on/off runs diverged"
            );
        }
    }
}

#[test]
fn event_wakeup_off_is_byte_identical() {
    for workload in WORKLOADS {
        for base in [
            SstConfig::scout(),
            SstConfig::execute_ahead(),
            SstConfig::sst(),
        ] {
            let mut slow = base.clone();
            slow.event_wakeup = false;
            let label = base.label();
            let a = run(CoreModel::CustomSst(base), workload, "event wakeup on");
            let b = run(CoreModel::CustomSst(slow), workload, "event wakeup off");
            assert_eq!(
                a, b,
                "{label} on {workload}: event-wakeup on/off runs diverged"
            );
        }
    }
}

/// Both mechanisms off at once — the fully conservative configuration —
/// still matches the default for the paper's SST design point.
#[test]
fn fully_conservative_sst_matches_default() {
    for workload in WORKLOADS {
        let mut cold = SstConfig::sst();
        cold.frontend.decode_cache = false;
        cold.event_wakeup = false;
        let a = run(CoreModel::Sst, workload, "default");
        let b = run(CoreModel::CustomSst(cold), workload, "conservative");
        assert_eq!(a, b, "sst on {workload}: conservative run diverged");
    }
}
