//! The machine lineup of the study.

use sst_core::{SstConfig, SstCore};
use sst_inorder::{InOrderConfig, InOrderCore};
use sst_isa::Program;
use sst_ooo::{OooConfig, OooCore};
use sst_uarch::Core;

/// One of the study's core models. Each variant fully determines a core
/// configuration, so experiments can sweep models by value; custom
/// configurations use the `Custom*` variants.
#[derive(Clone, Debug)]
pub enum CoreModel {
    /// 2-wide in-order, stall-on-use.
    InOrder,
    /// Hardware scout (runahead, results discarded).
    Scout,
    /// Execute-ahead (one checkpoint).
    ExecuteAhead,
    /// SST, ROCK's design point (two checkpoints).
    Sst,
    /// 2-wide out-of-order, 32-entry window.
    Ooo32,
    /// 4-wide out-of-order, 64-entry window.
    Ooo64,
    /// 4-wide out-of-order, 128-entry window (the paper's "larger,
    /// higher-powered" comparison core).
    Ooo128,
    /// Any SST-family configuration (sweeps).
    CustomSst(SstConfig),
    /// Any out-of-order configuration (sweeps).
    CustomOoo(OooConfig),
    /// Any in-order configuration.
    CustomInOrder(InOrderConfig),
}

impl CoreModel {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            CoreModel::InOrder => "in-order".into(),
            CoreModel::Scout => "scout".into(),
            CoreModel::ExecuteAhead => "ea".into(),
            CoreModel::Sst => "sst".into(),
            CoreModel::Ooo32 => "ooo-32".into(),
            CoreModel::Ooo64 => "ooo-64".into(),
            CoreModel::Ooo128 => "ooo-128".into(),
            CoreModel::CustomSst(c) => c.label(),
            CoreModel::CustomOoo(c) => c.label(),
            CoreModel::CustomInOrder(_) => "in-order*".into(),
        }
    }

    /// Builds the core for `program` as core number `id`.
    pub fn build(&self, id: usize, program: &Program) -> Box<dyn Core> {
        match self {
            CoreModel::InOrder => Box::new(InOrderCore::new(InOrderConfig::default(), id, program)),
            CoreModel::Scout => Box::new(SstCore::new(SstConfig::scout(), id, program)),
            CoreModel::ExecuteAhead => {
                Box::new(SstCore::new(SstConfig::execute_ahead(), id, program))
            }
            CoreModel::Sst => Box::new(SstCore::new(SstConfig::sst(), id, program)),
            CoreModel::Ooo32 => Box::new(OooCore::new(OooConfig::ooo_32(), id, program)),
            CoreModel::Ooo64 => Box::new(OooCore::new(OooConfig::ooo_64(), id, program)),
            CoreModel::Ooo128 => Box::new(OooCore::new(OooConfig::ooo_128(), id, program)),
            CoreModel::CustomSst(c) => Box::new(SstCore::new(c.clone(), id, program)),
            CoreModel::CustomOoo(c) => Box::new(OooCore::new(c.clone(), id, program)),
            CoreModel::CustomInOrder(c) => Box::new(InOrderCore::new(c.clone(), id, program)),
        }
    }

    /// The standard lineup of the study's main comparisons (E3/E4).
    pub fn lineup() -> Vec<CoreModel> {
        vec![
            CoreModel::InOrder,
            CoreModel::Scout,
            CoreModel::ExecuteAhead,
            CoreModel::Sst,
            CoreModel::Ooo32,
            CoreModel::Ooo64,
            CoreModel::Ooo128,
        ]
    }

    /// The SST-family subset (E3).
    pub fn sst_family() -> Vec<CoreModel> {
        vec![
            CoreModel::InOrder,
            CoreModel::Scout,
            CoreModel::ExecuteAhead,
            CoreModel::Sst,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::Asm;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = CoreModel::lineup().iter().map(|m| m.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn every_model_builds() {
        let mut a = Asm::new();
        a.halt();
        let p = a.finish().unwrap();
        for m in CoreModel::lineup() {
            let c = m.build(0, &p);
            assert_eq!(c.core_id(), 0);
            assert!(!c.halted());
        }
    }
}
