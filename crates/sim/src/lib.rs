//! # sst-sim
//!
//! The top-level simulation driver for the `rock-sst` workspace:
//!
//! * [`CoreModel`] — one enum naming every machine in the study (in-order,
//!   scout, EA, SST variants, OoO variants) with a uniform constructor, so
//!   experiments sweep models by value.
//! * [`System`] — a single core + memory hierarchy with a run loop,
//!   warm-up/measure accounting, and optional lock-step **co-simulation**
//!   against the functional interpreter ([`RetireChecker`]).
//! * [`CmpSystem`] — an `n`-core chip multiprocessor running a
//!   multiprogrammed mix over a shared L2, for the throughput experiments.
//! * [`area`] — the structure-count area/power proxy (experiment E9).
//! * [`report`] — markdown/CSV table emission for the experiment binaries.
//!
//! ```
//! use sst_sim::{CoreModel, System};
//! use sst_workloads::{Scale, Workload};
//!
//! let w = Workload::by_name("gzip", Scale::Smoke, 1).unwrap();
//! let result = System::new(CoreModel::Sst, &w).run_checked(50_000_000).unwrap();
//! assert!(result.ipc() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod checker;
mod cmp;
mod models;
pub mod report;
pub mod sampling;
mod service;
mod snapshot;
mod system;

pub use checker::{CosimError, RetireChecker};
pub use cmp::{CmpResult, CmpSystem};
pub use models::CoreModel;
pub use sampling::{run_sampled, SampledResult, SamplingConfig};
pub use service::{Lane, Request, WorkSource};
pub use snapshot::{Snapshot, SnapshotHeader};
pub use system::{geomean, RunResult, System, SystemTrace};
