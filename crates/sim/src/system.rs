//! Single-core simulation with warm-up accounting and optional
//! co-simulation.

use sst_isa::{InstClass, SnapError, SnapReader, SnapWriter, SNAPSHOT_VERSION};
use sst_mem::{Cycle, MemConfig, MemStats, MemSystem};
use sst_obs::{HostTimes, TraceBuf};
use sst_uarch::Core;
use sst_workloads::Workload;

use crate::snapshot::{Snapshot, SNAPSHOT_MAGIC};
use crate::{CoreModel, CosimError, RetireChecker};

/// Result of a single-core run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Model label.
    pub model: String,
    /// Workload name.
    pub workload: String,
    /// Total cycles to `halt`.
    pub cycles: Cycle,
    /// Total instructions committed.
    pub insts: u64,
    /// Cycles consumed by the warm-up window.
    pub warmup_cycles: Cycle,
    /// Instructions in the warm-up window.
    pub warmup_insts: u64,
    /// Memory-hierarchy statistics.
    pub mem: MemStats,
    /// Model-specific counters (`Core::counters`), in the core's stable
    /// display order: defer rates, stall breakdowns, prediction counts...
    /// Owned keys so results can round-trip through the harness cache.
    pub counters: Vec<(String, u64)>,
    /// Committed-instruction mix, indexed like [`InstClass::ALL`].
    pub inst_mix: [u64; 10],
    /// Per-phase cycle accounting (`Core::phases`), in stable phase
    /// order. The rows sum exactly to [`RunResult::cycles`] — the
    /// trace-equivalence suite pins this for every model — so the table
    /// is a true decomposition of where the run's time went.
    pub phases: Vec<(String, u64)>,
}

impl RunResult {
    /// Whole-run IPC.
    pub fn ipc(&self) -> f64 {
        self.insts as f64 / self.cycles.max(1) as f64
    }

    /// Steady-state IPC (warm-up window excluded).
    ///
    /// Execute-ahead-style cores can commit in large end-of-run bursts
    /// (an epoch that never drains mid-run); when the post-warm-up window
    /// degenerates to under 10% of the run, the whole-run IPC is the
    /// honest figure and is returned instead.
    pub fn measured_ipc(&self) -> f64 {
        let insts = self.insts - self.warmup_insts;
        let cycles = self.cycles - self.warmup_cycles;
        if cycles * 10 < self.cycles {
            return self.ipc();
        }
        insts as f64 / cycles.max(1) as f64
    }

    /// Measured-window cycles.
    pub fn measured_cycles(&self) -> Cycle {
        self.cycles - self.warmup_cycles
    }

    /// Looks up a model counter by name (`None` when the model does not
    /// report it).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Fraction of committed instructions in `class`.
    pub fn mix_fraction(&self, class: InstClass) -> f64 {
        self.inst_mix[class.index()] as f64 / self.insts.max(1) as f64
    }

    /// Looks up a phase row by label (`None` for unknown labels).
    pub fn phase(&self, label: &str) -> Option<u64> {
        self.phases.iter().find(|(n, _)| n == label).map(|(_, v)| *v)
    }
}

/// The trace bundle captured by [`System::run_with_trace`]: the core's
/// typed pipeline events and the memory port's demand-miss lifetimes.
#[derive(Debug)]
pub struct SystemTrace {
    /// The core's event ring (`None` for cores that emit nothing).
    pub core: Option<TraceBuf>,
    /// The memory port's miss-span ring.
    pub mem: Option<TraceBuf>,
}

/// A single core attached to its own memory hierarchy, running one
/// workload.
///
/// Runs are restartable: [`System::run_insts`] advances until an
/// instruction target, [`System::snapshot`] captures the complete run
/// state, and [`System::resume`] rebuilds an equivalent system that
/// continues byte-identically (the `snapshot_resume` suite pins this for
/// every model).
pub struct System {
    core: Box<dyn Core>,
    mem: MemSystem,
    workload_name: &'static str,
    skip_insts: u64,
    model_label: String,
    checker: Option<RetireChecker>,
    fast_forward: bool,
    // Run accumulators. These live on the struct (not in the run loop) so
    // a snapshot taken mid-run carries them and a resumed run reports the
    // same totals as an uninterrupted one.
    committed: u64,
    warmup_cycles: Cycle,
    inst_mix: [u64; 10],
}

impl System {
    /// Builds a system with the default memory configuration.
    pub fn new(model: CoreModel, workload: &Workload) -> System {
        System::with_mem(model, workload, &MemConfig::default())
    }

    /// Builds a system with an explicit memory configuration (latency and
    /// structure sweeps).
    pub fn with_mem(model: CoreModel, workload: &Workload, mem_cfg: &MemConfig) -> System {
        let mut mem = MemSystem::new(mem_cfg, 1);
        workload.program.load_into(mem.mem_mut());
        System {
            core: model.build(0, &workload.program),
            mem,
            workload_name: workload.name,
            skip_insts: workload.skip_insts,
            model_label: model.label(),
            checker: Some(RetireChecker::new(&workload.program)),
            fast_forward: true,
            committed: 0,
            warmup_cycles: 0,
            inst_mix: [0; 10],
        }
    }

    /// Disables per-commit co-simulation (saves ~2x wall clock on large
    /// sweeps; the test suite keeps it on).
    pub fn without_cosim(mut self) -> System {
        self.checker = None;
        self
    }

    /// Disables idle-cycle fast-forwarding, ticking every cycle one by
    /// one. Fast-forwarding never changes architected results — cycles,
    /// commits, and counters are identical either way (the equivalence
    /// test suite holds this invariant) — so this exists for those tests
    /// and for debugging, not for accuracy.
    pub fn without_fast_forward(mut self) -> System {
        self.fast_forward = false;
        self
    }

    /// Enables typed event tracing on the core and its memory port.
    /// Record-only (the `sst-obs` event-sink contract): a traced run's
    /// [`RunResult`] is byte-identical to an untraced one, which
    /// `crates/sim/tests/trace_equiv.rs` enforces. Collect the events
    /// with [`System::run_with_trace`].
    pub fn with_tracing(mut self) -> System {
        self.core.set_trace(true);
        self.mem.set_trace(0, true);
        self
    }

    /// Enables host-side self-profiling: wall-time scoped timers around
    /// the core's pipeline stages and the memory port's timing walks.
    /// Record-only, like tracing. Collect with
    /// [`System::run_with_profile`].
    pub fn with_host_prof(mut self) -> System {
        self.core.set_host_prof(true);
        self.mem.set_host_prof(true);
        self
    }

    /// Runs to `halt`, co-simulating every commit when enabled.
    ///
    /// # Errors
    ///
    /// Returns the first [`CosimError`], or an error-shaped divergence when
    /// the core fails to finish within `max_cycles`.
    pub fn run_checked(mut self, max_cycles: Cycle) -> Result<RunResult, CosimError> {
        self.run_inner(max_cycles)
    }

    /// Runs to `halt` like [`System::run_checked`], additionally returning
    /// the core's speculation-leakage summary (experiment E13). `None`
    /// unless the model was built with taint tracking enabled — leakage is
    /// deliberately reported out of band of [`RunResult`] so that enabling
    /// taint leaves the performance result byte-identical.
    ///
    /// # Errors
    ///
    /// As [`System::run_checked`].
    pub fn run_with_leakage(
        mut self,
        max_cycles: Cycle,
    ) -> Result<(RunResult, Option<sst_uarch::LeakageSummary>), CosimError> {
        let result = self.run_inner(max_cycles)?;
        let leakage = self.core.leakage().cloned();
        Ok((result, leakage))
    }

    /// Runs to `halt` like [`System::run_checked`], additionally
    /// returning the captured trace bundle. Enable capture with
    /// [`System::with_tracing`] first; without it both rings are `None`.
    ///
    /// # Errors
    ///
    /// As [`System::run_checked`].
    pub fn run_with_trace(
        mut self,
        max_cycles: Cycle,
    ) -> Result<(RunResult, SystemTrace), CosimError> {
        let result = self.run_inner(max_cycles)?;
        let trace = SystemTrace {
            core: self.core.take_trace(),
            mem: self.mem.take_trace(0),
        };
        Ok((result, trace))
    }

    /// Runs to `halt` like [`System::run_checked`], additionally
    /// returning the host-side stage times (core stages merged with the
    /// memory port's walk time). Enable with [`System::with_host_prof`]
    /// first; without it the times are `None`.
    ///
    /// # Errors
    ///
    /// As [`System::run_checked`].
    pub fn run_with_profile(
        mut self,
        max_cycles: Cycle,
    ) -> Result<(RunResult, Option<HostTimes>), CosimError> {
        let result = self.run_inner(max_cycles)?;
        let mut times = self.core.host_times().copied();
        if let Some(m) = self.mem.host_times() {
            times.get_or_insert_with(HostTimes::new).merge(&m);
        }
        Ok((result, times))
    }

    fn run_inner(&mut self, max_cycles: Cycle) -> Result<RunResult, CosimError> {
        self.run_insts(u64::MAX, max_cycles)?;
        Ok(self.result())
    }

    fn drain(&mut self, commits: &mut Vec<sst_uarch::Commit>) -> Result<(), CosimError> {
        self.core.drain_commits_into(commits);
        for c in commits.drain(..) {
            if let Some(ck) = self.checker.as_mut() {
                ck.check(&c)?;
            }
            self.inst_mix[c.inst.class().index()] += 1;
            self.committed += 1;
            if self.committed == self.skip_insts {
                self.warmup_cycles = self.core.cycle();
            }
        }
        Ok(())
    }

    /// Runs until at least `target_insts` total instructions have
    /// committed, or the core halts, whichever comes first. The target is
    /// cumulative over the whole run (a resumed system keeps counting
    /// from the snapshot's total). Pausing here, snapshotting, and
    /// resuming continues the run byte-identically — the pause point is
    /// between full tick iterations, where no partial pipeline step is in
    /// flight.
    ///
    /// # Errors
    ///
    /// As [`System::run_checked`].
    pub fn run_insts(&mut self, target_insts: u64, max_cycles: Cycle) -> Result<(), CosimError> {
        let mut commits = Vec::new();
        while !self.core.halted() {
            if self.committed >= target_insts {
                return Ok(());
            }
            if self.core.cycle() >= max_cycles {
                return Err(CosimError {
                    at: self.committed,
                    what: format!(
                        "{} on {} did not halt within {max_cycles} cycles",
                        self.model_label, self.workload_name
                    ),
                });
            }
            self.core.tick(&mut self.mem.bus(0));
            self.drain(&mut commits)?;
            if self.fast_forward && !self.core.halted() {
                // Bulk-skip provably idle cycles. Clamping to `max_cycles`
                // keeps the timeout check above firing at the same cycle
                // (and with the same commit count) as an unskipped run.
                let target = self.core.next_event_cycle().min(max_cycles);
                if target > self.core.cycle() {
                    self.core.skip_to(target);
                }
            }
        }
        // Drain any commits recorded in the final tick.
        self.drain(&mut commits)
    }

    /// Total instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// `true` once the core has retired its `halt`.
    pub fn halted(&self) -> bool {
        self.core.halted()
    }

    /// Assembles the [`RunResult`] for the run so far (normally called
    /// once the core has halted).
    pub fn result(&self) -> RunResult {
        RunResult {
            model: self.model_label.clone(),
            workload: self.workload_name.to_string(),
            cycles: self.core.cycle(),
            insts: self.committed,
            warmup_cycles: self.warmup_cycles,
            warmup_insts: self.skip_insts.min(self.committed),
            mem: self.mem.stats(),
            counters: self
                .core
                .counters()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            inst_mix: self.inst_mix,
            phases: self
                .core
                .phases()
                .rows()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        }
    }

    /// Captures the complete run state — accumulators, co-simulation
    /// checker, core timing state, and the full memory hierarchy — as a
    /// versioned [`Snapshot`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Unsupported`] if the core model does not implement
    /// state capture (all stock models do).
    pub fn snapshot(&self) -> Result<Snapshot, SnapError> {
        let mut w = SnapWriter::new();
        w.tag(SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w.put_str(&self.model_label);
        w.put_str(self.workload_name);
        w.put_u64(self.skip_insts);
        w.put_u64(self.committed);
        w.put_u64(self.warmup_cycles);
        for &n in &self.inst_mix {
            w.put_u64(n);
        }
        match &self.checker {
            Some(ck) => {
                w.put_bool(true);
                ck.save_state(&mut w);
            }
            None => w.put_bool(false),
        }
        self.core.save_state(&mut w)?;
        self.mem.save_state(&mut w);
        Ok(Snapshot::from_bytes(w.into_bytes()))
    }

    /// Rebuilds a system from a [`Snapshot`] with the default memory
    /// configuration. See [`System::resume_with_mem`].
    ///
    /// # Errors
    ///
    /// As [`System::resume_with_mem`].
    pub fn resume(model: CoreModel, workload: &Workload, snap: &Snapshot) -> Result<System, SnapError> {
        System::resume_with_mem(model, workload, &MemConfig::default(), snap)
    }

    /// Rebuilds a system from a [`Snapshot`], continuing the run exactly
    /// where [`System::snapshot`] left it. The caller supplies the same
    /// model, workload, and memory configuration the snapshot was taken
    /// under; model and workload are validated against the snapshot
    /// header, and the restored core/memory state is validated
    /// structurally against the rebuilt configuration.
    ///
    /// # Errors
    ///
    /// [`SnapError::Mismatch`] when the model or workload disagrees with
    /// the header; [`SnapError::Corrupt`] on truncated or damaged bytes.
    pub fn resume_with_mem(
        model: CoreModel,
        workload: &Workload,
        mem_cfg: &MemConfig,
        snap: &Snapshot,
    ) -> Result<System, SnapError> {
        let mut sys = System::with_mem(model, workload, mem_cfg);
        let mut r = SnapReader::new(snap.as_bytes());
        r.tag(SNAPSHOT_MAGIC)?;
        let version = r.take_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapError::Mismatch(format!(
                "snapshot version {version}, this build reads {SNAPSHOT_VERSION}"
            )));
        }
        let model_label = r.take_str()?;
        if model_label != sys.model_label {
            return Err(SnapError::Mismatch(format!(
                "snapshot of model '{model_label}', resuming as '{}'",
                sys.model_label
            )));
        }
        let workload_name = r.take_str()?;
        if workload_name != sys.workload_name {
            return Err(SnapError::Mismatch(format!(
                "snapshot of workload '{workload_name}', resuming on '{}'",
                sys.workload_name
            )));
        }
        let skip_insts = r.take_u64()?;
        if skip_insts != sys.skip_insts {
            return Err(SnapError::Mismatch(format!(
                "snapshot warm-up window {skip_insts}, workload has {}",
                sys.skip_insts
            )));
        }
        sys.committed = r.take_u64()?;
        sys.warmup_cycles = r.take_u64()?;
        for n in sys.inst_mix.iter_mut() {
            *n = r.take_u64()?;
        }
        if r.take_bool()? {
            sys.checker
                .as_mut()
                .expect("with_mem always builds a checker")
                .restore_state(&mut r)?;
        } else {
            sys.checker = None;
        }
        sys.core.restore_state(&mut r)?;
        sys.mem.restore_state(&mut r)?;
        r.finish()?;
        Ok(sys)
    }

    /// Convenience: build + run one (model, workload) pair, panicking on
    /// divergence — the form every experiment binary uses.
    pub fn measure(model: CoreModel, workload: &Workload, max_cycles: Cycle) -> RunResult {
        System::new(model, workload)
            .run_checked(max_cycles)
            .expect("co-simulation clean")
    }
}

/// Geometric mean of a slice of positive ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_workloads::{Scale, Workload};

    #[test]
    fn run_produces_sane_result() {
        let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
        let r = System::measure(CoreModel::InOrder, &w, 50_000_000);
        assert!(r.cycles > 0);
        assert!(r.insts > w.skip_insts);
        assert!(r.ipc() > 0.05 && r.ipc() < 2.0, "ipc {}", r.ipc());
        assert!(r.measured_ipc() > 0.0);
        assert!(r.warmup_cycles < r.cycles);
        // Counters and instruction mix ride along on every run.
        assert!(r.counter("issued").unwrap() >= r.insts);
        assert!(r.counter("cond_predictions").unwrap() > 0);
        assert_eq!(r.inst_mix.iter().sum::<u64>(), r.insts);
        assert!(r.mix_fraction(sst_isa::InstClass::Load) > 0.0);
        assert_eq!(r.inst_mix[9], 1, "exactly one halt commits");
    }

    #[test]
    fn sst_counters_surface_speculation_activity() {
        let w = Workload::by_name("erp", Scale::Smoke, 3).unwrap();
        let r = System::measure(CoreModel::Sst, &w, 100_000_000);
        assert!(r.counter("episodes").unwrap() > 0, "erp must trigger episodes");
        assert!(r.counter("deferred").unwrap() > 0);
        assert!(r.counter("epochs_committed").unwrap() > 0);
        // Unknown names come back as None, not a panic.
        assert_eq!(r.counter("no-such-counter"), None);
    }

    #[test]
    fn cosim_runs_for_all_models_on_a_memory_workload() {
        let w = Workload::by_name("erp", Scale::Smoke, 3).unwrap();
        for m in CoreModel::lineup() {
            let label = m.label();
            let r = System::new(m, &w)
                .run_checked(100_000_000)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(r.insts > 0);
        }
    }

    #[test]
    fn timeout_is_reported() {
        let w = Workload::by_name("oltp", Scale::Smoke, 3).unwrap();
        let e = System::new(CoreModel::InOrder, &w)
            .run_checked(100)
            .unwrap_err();
        assert!(e.what.contains("did not halt"));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }
}
