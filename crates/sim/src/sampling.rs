//! SMARTS-style sampled simulation.
//!
//! Detailed timing simulation costs ~100x the functional interpreter per
//! instruction. Systematic sampling (Wunderlich et al., ISCA 2003) buys
//! that factor back: execute the workload functionally, and only drop
//! into the detailed core for short, evenly spaced *measurement
//! intervals*. Each sampling unit of `period` instructions is spent as
//!
//! ```text
//! |---- functional skip ----|-- functional warming --|-- detailed interval --|
//!   period - warm - interval          warm                   interval
//! ```
//!
//! * **Skip** — the reference interpreter executes at full speed
//!   (hundreds of Minst/s) with no model updates.
//! * **Warming** — the interpreter still executes every instruction, but
//!   each one also touches the cache *tags* ([`sst_mem::MemSystem::warm_touch`])
//!   and trains the branch predictor
//!   ([`sst_uarch::Core::warm_predictor`]), so the detailed interval
//!   starts against warm long-history state instead of a cold hierarchy.
//! * **Detailed** — the timing core is *teleported* to the
//!   interpreter's architectural point ([`sst_uarch::Core::warm_boot`]:
//!   squash speculative state, reload registers, redirect fetch — but
//!   keep predictor tables and cache warmth), its backing memory is
//!   replaced with a clone of the interpreter's image, in-flight miss
//!   state is dropped, and `interval` instructions run under the full
//!   model. The interval's CPI is the cycle delta over the commit delta.
//!
//! One core and one memory system persist across the whole run — warmth
//! accumulates; nothing is rebuilt per interval. The sampled CPI is the
//! mean of the per-interval CPIs, reported with its 95% confidence
//! interval (`1.96 · s/√n`), and validated against full detailed runs by
//! the harness's sampling benchmark (3% gate).

use sst_isa::{Inst, Interp, MemEffect, INST_BYTES};
use sst_mem::{AccessKind, Cycle, MemConfig, MemSystem};
use sst_uarch::Core;
use sst_workloads::Workload;

use crate::{CoreModel, CosimError};

/// Sampling-schedule parameters.
#[derive(Clone, Debug)]
pub struct SamplingConfig {
    /// Instructions per sampling unit (skip + warming + detailed).
    pub period: u64,
    /// Detailed (measured) instructions per unit.
    pub interval: u64,
    /// Functional-warming instructions run immediately before each
    /// detailed interval.
    pub warm: u64,
    /// Watchdog: abort if one detailed interval exceeds this many cycles.
    pub max_interval_cycles: Cycle,
}

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig {
            period: 500_000,
            interval: 10_000,
            warm: 10_000,
            max_interval_cycles: 50_000_000,
        }
    }
}

/// Result of a sampled run.
#[derive(Clone, Debug)]
pub struct SampledResult {
    /// Model label.
    pub model: String,
    /// Workload name.
    pub workload: String,
    /// Total instructions executed functionally (the whole program).
    pub insts: u64,
    /// Number of measured intervals.
    pub intervals: usize,
    /// Instructions committed under the detailed model.
    pub detailed_insts: u64,
    /// Cycles spent in detailed intervals.
    pub detailed_cycles: Cycle,
    /// Sampled CPI: mean of the per-interval CPIs.
    pub cpi: f64,
    /// Half-width of the 95% confidence interval on [`SampledResult::cpi`].
    pub ci95: f64,
    /// The per-interval CPIs themselves.
    pub cpis: Vec<f64>,
}

impl SampledResult {
    /// Sampled IPC (reciprocal of the sampled CPI).
    pub fn ipc(&self) -> f64 {
        1.0 / self.cpi
    }

    /// The confidence interval as a fraction of the mean.
    pub fn rel_ci(&self) -> f64 {
        self.ci95 / self.cpi.max(f64::MIN_POSITIVE)
    }

    /// Fraction of the program executed under the detailed model.
    pub fn detail_fraction(&self) -> f64 {
        self.detailed_insts as f64 / self.insts.max(1) as f64
    }
}

/// Runs `steps` instructions of functional warming: every instruction
/// executes on the interpreter while its effects feed the memory
/// hierarchy's tags and the core's branch predictor. Returns `true` if
/// the program halted inside the window.
///
/// Two throughput tricks keep this within a small multiple of the plain
/// fast-forward loop: the batched [`Interp::run_traced`] inlines the
/// observer into the dispatch loop, and instruction-fetch touches are
/// deduplicated per cache line (sequential fetch re-touches the same
/// line `line_bytes / INST_BYTES` times; one probe warms it).
fn warm_run(
    interp: &mut Interp,
    core: &mut dyn Core,
    mem: &mut MemSystem,
    steps: u64,
) -> Result<bool, CosimError> {
    let line_mask = !(mem.line_bytes() - 1);
    let mut last_fetch_line = u64::MAX;
    let mut halted = false;
    let outcome = interp.run_traced(steps, |ev| {
        let fetch_line = ev.pc & line_mask;
        if fetch_line != last_fetch_line {
            last_fetch_line = fetch_line;
            mem.warm_touch(0, AccessKind::IFetch, ev.pc);
        }
        match ev.mem {
            MemEffect::Load { addr, .. } => mem.warm_touch(0, AccessKind::Load, addr),
            MemEffect::Store { addr, .. } => mem.warm_touch(0, AccessKind::Store, addr),
            MemEffect::None => {}
        }
        match ev.inst {
            Inst::Branch { .. } => {
                let taken = ev.next_pc != ev.pc.wrapping_add(INST_BYTES);
                core.warm_predictor(ev.pc, ev.inst, taken, ev.next_pc);
            }
            Inst::Jal { .. } | Inst::Jalr { .. } => {
                core.warm_predictor(ev.pc, ev.inst, true, ev.next_pc);
            }
            _ => {}
        }
        halted = ev.halted;
    });
    outcome.map_err(|t| CosimError {
        at: interp.retired(),
        what: format!("reference trapped during warming: {t}"),
    })?;
    Ok(halted)
}

/// Runs `workload` under `model` with SMARTS-style systematic sampling,
/// using the default memory configuration.
///
/// # Errors
///
/// [`CosimError`] on a reference trap, a detailed-interval watchdog
/// timeout, an infeasible configuration (`interval + warm >= period`,
/// zero-length interval), or a workload too short to yield even one
/// measured interval.
pub fn run_sampled(
    model: CoreModel,
    workload: &Workload,
    cfg: &SamplingConfig,
) -> Result<SampledResult, CosimError> {
    let bad_cfg = |what: String| CosimError { at: 0, what };
    if cfg.interval == 0 {
        return Err(bad_cfg("sampling interval must be nonzero".into()));
    }
    if cfg.interval + cfg.warm >= cfg.period {
        return Err(bad_cfg(format!(
            "sampling period {} must exceed interval {} + warming {}",
            cfg.period, cfg.interval, cfg.warm
        )));
    }

    let mut interp = Interp::new(&workload.program);
    let mut core = model.build(0, &workload.program);
    let mut mem = MemSystem::new(&MemConfig::default(), 1);
    workload.program.load_into(mem.mem_mut());

    let skip = cfg.period - cfg.interval - cfg.warm;
    let mut cpis: Vec<f64> = Vec::new();
    let mut detailed_insts = 0u64;
    let mut detailed_cycles: Cycle = 0;
    let mut commits = Vec::new();

    'units: while !interp.is_halted() {
        // Functional skip: no model updates, full interpreter speed.
        interp.run(skip).map_err(|t| CosimError {
            at: interp.retired(),
            what: format!("reference trapped during fast-forward: {t}"),
        })?;
        if interp.is_halted() {
            break;
        }
        // Functional warming: tags + predictor follow the reference stream.
        if warm_run(&mut interp, core.as_mut(), &mut mem, cfg.warm)? {
            break 'units;
        }
        // Detailed interval: teleport the core to the reference point and
        // measure `interval` instructions under the full timing model.
        core.warm_boot(interp.state().regs(), interp.state().pc);
        mem.replace_port_mem(0, interp.mem().clone());
        mem.reset_timing();
        let cycles0 = core.cycle();
        let deadline = cycles0 + cfg.max_interval_cycles;
        let mut committed = 0u64;
        while committed < cfg.interval && !core.halted() {
            if core.cycle() >= deadline {
                return Err(CosimError {
                    at: interp.retired() + committed,
                    what: format!(
                        "detailed interval exceeded {} cycles at sample {}",
                        cfg.max_interval_cycles,
                        cpis.len()
                    ),
                });
            }
            core.tick(&mut mem.bus(0));
            core.drain_commits_into(&mut commits);
            committed += commits.drain(..).count() as u64;
            if !core.halted() {
                let target = core.next_event_cycle().min(deadline);
                if target > core.cycle() {
                    core.skip_to(target);
                }
            }
        }
        core.drain_commits_into(&mut commits);
        committed += commits.drain(..).count() as u64;
        let dcycles = core.cycle() - cycles0;
        if committed > 0 {
            cpis.push(dcycles as f64 / committed as f64);
            detailed_insts += committed;
            detailed_cycles += dcycles;
        }
        // Re-synchronize the reference: the detailed core just executed
        // `committed` architecturally correct instructions (its commit
        // stream is cosim-verified elsewhere), so the reference advances
        // past them at functional speed.
        interp.run(committed).map_err(|t| CosimError {
            at: interp.retired(),
            what: format!("reference trapped re-synchronizing: {t}"),
        })?;
        if core.halted() {
            break;
        }
    }

    if cpis.is_empty() {
        return Err(bad_cfg(format!(
            "workload '{}' retired {} instructions — too short for period {}",
            workload.name,
            interp.retired(),
            cfg.period
        )));
    }

    let n = cpis.len() as f64;
    let mean = cpis.iter().sum::<f64>() / n;
    let var = if cpis.len() > 1 {
        cpis.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    let ci95 = 1.96 * (var / n).sqrt();

    Ok(SampledResult {
        model: model.label(),
        workload: workload.name.to_string(),
        insts: interp.retired(),
        intervals: cpis.len(),
        detailed_insts,
        detailed_cycles,
        cpi: mean,
        ci95,
        cpis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_workloads::Scale;

    #[test]
    fn infeasible_configs_are_rejected() {
        let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
        let cfg = SamplingConfig {
            period: 1000,
            interval: 600,
            warm: 500,
            ..SamplingConfig::default()
        };
        let e = run_sampled(CoreModel::InOrder, &w, &cfg).unwrap_err();
        assert!(e.what.contains("must exceed"), "{e}");
        let cfg = SamplingConfig {
            interval: 0,
            ..SamplingConfig::default()
        };
        let e = run_sampled(CoreModel::InOrder, &w, &cfg).unwrap_err();
        assert!(e.what.contains("nonzero"), "{e}");
    }

    #[test]
    fn too_short_workload_is_reported() {
        let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
        let cfg = SamplingConfig {
            period: u64::MAX / 2,
            ..SamplingConfig::default()
        };
        let e = run_sampled(CoreModel::InOrder, &w, &cfg).unwrap_err();
        assert!(e.what.contains("too short"), "{e}");
    }

    #[test]
    fn sampled_run_produces_sane_cpi() {
        let w = Workload::by_name("gzip", Scale::Smoke, 3).unwrap();
        let cfg = SamplingConfig {
            period: 20_000,
            interval: 2_000,
            warm: 2_000,
            ..SamplingConfig::default()
        };
        let r = run_sampled(CoreModel::Sst, &w, &cfg).unwrap();
        assert!(r.intervals >= 2, "intervals {}", r.intervals);
        assert!(r.cpi > 0.3 && r.cpi < 30.0, "cpi {}", r.cpi);
        assert!(r.ci95 >= 0.0);
        assert_eq!(r.cpis.len(), r.intervals);
        assert!(r.detailed_insts > 0 && r.detailed_insts < r.insts);
        assert!(r.detail_fraction() < 0.5);
        assert!(r.ipc() > 0.0);
    }
}
