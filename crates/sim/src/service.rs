//! The service driver: a CMP cycle loop where cores execute externally
//! dispatched *requests* instead of running a fixed program to halt.
//!
//! A [`WorkSource`] (e.g. `sst-traffic`'s open-loop generator) feeds
//! per-core [`Lane`]s at **quantum boundaries**: every `quantum()` cycles
//! the driver stops the chip clock, hands the source every lane (arrived
//! requests in, completed requests out), and resumes. In between, all
//! dispatch state is strictly core-local — a core that finishes its
//! request pops the next one from *its own* lane queue, and a core with
//! nothing queued is clock-gated ([`sst_uarch::Core::gate_to`]) until the
//! boundary. That split is what keeps the parallel driver byte-identical
//! to the serial one: global decisions happen only at barriers, on one
//! thread, and mid-quantum behaviour never crosses cores except through
//! the horizon-gated shared memory (exactly as in [`crate::CmpSystem`]'s
//! fixed-work drivers).
//!
//! A request is "serve `insts` more retired instructions of the core's
//! resident kernel" — the kernel is an endless server loop, so the slice
//! boundaries are the transaction boundaries the source chose. Completion
//! is detected on the tick whose commits crossed the target; idle-cycle
//! fast-forwarding still applies between events (skips never cross a
//! commit, so completion cycles are unaffected — the `next_event_cycle`
//! contract).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Mutex;

use sst_mem::{Cycle, ParallelMem};
use sst_uarch::Core;

use crate::cmp::{CmpResult, CmpSystem, PoisonOnPanic};

/// One dispatched unit of work: serve `insts` retired instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Source-assigned id (arrival order in `sst-traffic`).
    pub id: u64,
    /// Retired-instruction budget of this request.
    pub insts: u64,
}

/// A core's dispatch lane: the run queue the source fills, the completion
/// log the source drains, and the in-flight request the driver tracks.
#[derive(Debug, Default)]
pub struct Lane {
    /// Requests waiting on this core, FIFO.
    pub queue: VecDeque<Request>,
    /// Completions since the last boundary: `(request id, cycle)`.
    pub done: Vec<(u64, Cycle)>,
    /// The running request: `(id, retired-count target)`.
    in_flight: Option<(u64, u64)>,
}

impl Lane {
    /// Queued plus in-flight requests (the least-loaded metric).
    pub fn load(&self) -> usize {
        self.queue.len() + usize::from(self.in_flight.is_some())
    }

    /// `true` while a request is being served.
    pub fn busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Starts the next queued request if the core is idle.
    fn start_next(&mut self, core: &mut dyn Core) {
        if self.in_flight.is_none() {
            if let Some(req) = self.queue.pop_front() {
                // The target counts from the core's current retired count:
                // every request is exactly `insts` more instructions from
                // wherever the resident kernel stands now.
                self.in_flight = Some((req.id, core.retired() + req.insts));
            }
        }
    }

    /// Post-tick completion check at chip cycle `cyc`. On completion the
    /// next queued request starts immediately; with nothing queued the
    /// core is clock-gated to the quantum boundary `end`. Returns `true`
    /// iff the lane just went idle (the parallel driver then publishes
    /// the gated horizon).
    fn finish_check(&mut self, core: &mut dyn Core, cyc: Cycle, end: Cycle) -> bool {
        let Some((id, target)) = self.in_flight else {
            return false;
        };
        if core.halted() {
            panic!(
                "service core {}: kernel halted with request {id} in flight (server \
                 kernels must loop forever)",
                core.core_id()
            );
        }
        if core.retired() < target {
            return false;
        }
        self.done.push((id, cyc));
        self.in_flight = None;
        self.start_next(core);
        if self.in_flight.is_none() {
            core.gate_to(end);
            true
        } else {
            false
        }
    }
}

/// The request generator/consumer driving a service run.
///
/// Determinism contract: `boundary` is always called on a single thread,
/// in strictly increasing `now` order, with every lane — its behaviour
/// must be a pure function of its own state plus the lane contents, which
/// is what makes service runs byte-identical across `--threads`.
pub trait WorkSource {
    /// The dispatch quantum in cycles (global decisions happen only every
    /// `quantum()` cycles; smaller = finer dispatch, more sync).
    fn quantum(&self) -> Cycle;

    /// Called at chip cycle `now` (a quantum multiple) before the next
    /// quantum runs. Harvest `done`, push into `queue`, account sheds.
    /// Return `false` to stop the run — only legal once every lane is
    /// idle with an empty queue, so the makespan is exact.
    fn boundary(&mut self, now: Cycle, lanes: &mut [Lane]) -> bool;
}

impl CmpSystem {
    /// Runs the chip under `source` until it stops, returning the same
    /// shape as a fixed-work run ([`CmpResult`]): `per_core` holds each
    /// core's final `(cycle, retired)` (cores never halt — server kernels
    /// loop forever), `cycles` the makespan. Serial and parallel
    /// (`with_threads`) drivers are byte-identical, including everything
    /// the source observed through its lanes.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds `max_cycles` (runaway source), or if a
    /// kernel halts mid-request.
    pub fn run_service(self, source: &mut dyn WorkSource, max_cycles: Cycle) -> CmpResult {
        if self.threads > 1 && self.cores.len() > 1 {
            return self.run_service_parallel(source, max_cycles);
        }
        self.run_service_serial(source, max_cycles)
    }

    fn run_service_serial(mut self, source: &mut dyn WorkSource, max_cycles: Cycle) -> CmpResult {
        let n = self.cores.len();
        let q = source.quantum().max(1);
        let mut lanes: Vec<Lane> = (0..n).map(|_| Lane::default()).collect();
        let mut commits = Vec::new();
        let mut now: Cycle = 0;
        while source.boundary(now, &mut lanes) {
            let end = now + q;
            assert!(end <= max_cycles, "service run exceeded {max_cycles} cycles");
            for (core, lane) in self.cores.iter_mut().zip(lanes.iter_mut()) {
                lane.start_next(core.as_mut());
                if !lane.busy() {
                    core.gate_to(end);
                }
            }
            let mut cyc = now;
            while cyc < end {
                let mut busy = 0usize;
                for (i, lane) in lanes.iter_mut().enumerate() {
                    if !lane.busy() {
                        continue;
                    }
                    busy += 1;
                    let core = &mut self.cores[i];
                    core.tick(&mut self.mem.bus(i));
                    core.drain_commits_into(&mut commits); // service runs skip cosim
                    commits.clear();
                    lane.finish_check(core.as_mut(), cyc, end);
                }
                cyc += 1;
                if busy == 0 {
                    break; // every core is gated to `end` already
                }
                if self.fast_forward && cyc < end {
                    let target = self
                        .cores
                        .iter()
                        .zip(&lanes)
                        .filter(|(_, l)| l.busy())
                        .map(|(c, _)| c.next_event_cycle())
                        .min()
                        .unwrap_or(end)
                        .min(end);
                    if target > cyc {
                        for (core, lane) in self.cores.iter_mut().zip(&lanes) {
                            if lane.busy() {
                                core.skip_to(target);
                            }
                        }
                        cyc = target;
                    }
                }
            }
            now = end;
        }
        CmpResult {
            model: self.model_label,
            per_core: self.cores.iter().map(|c| (c.cycle(), c.retired())).collect(),
            cycles: now,
            mem: self.mem.stats(),
        }
    }

    /// The multi-threaded service driver: the fixed-work parallel driver's
    /// chunked workers and horizon-gated memory, plus a two-phase quantum
    /// barrier. Per quantum: the coordinator (this thread) runs
    /// `source.boundary` alone while the workers are parked, publishes the
    /// quantum end, and releases them (phase A); each worker then drives
    /// its chunk to the boundary exactly like the serial loop — gated
    /// cores publish their horizon at `end` up front, so cross-chunk
    /// memory ordering never waits on an idle core — and parks again
    /// (phase B).
    fn run_service_parallel(mut self, source: &mut dyn WorkSource, max_cycles: Cycle) -> CmpResult {
        let n = self.cores.len();
        let chunk = n.div_ceil(self.threads.min(n));
        let n_workers = n.div_ceil(chunk);
        let (mut ports, pmem) = self.mem.into_parallel();
        let fast_forward = self.fast_forward;
        let q = source.quantum().max(1);

        let lanes: Vec<Mutex<Lane>> = (0..n).map(|_| Mutex::new(Lane::default())).collect();
        let barrier = QuantumBarrier::new(n_workers + 1);
        let stop = AtomicBool::new(false);
        let quantum_end = AtomicU64::new(0);

        let mut per_core: Vec<(Cycle, u64)> = Vec::with_capacity(n);
        let mut cycles: Cycle = 0;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (ci, (cores, ports)) in self
                .cores
                .chunks_mut(chunk)
                .zip(ports.chunks_mut(chunk))
                .enumerate()
            {
                let (pmem, barrier) = (&pmem, &barrier);
                let (stop, quantum_end, lanes) = (&stop, &quantum_end, &lanes);
                handles.push(s.spawn(move || {
                    let _poison = PoisonOnPanic(pmem);
                    let base = ci * chunk;
                    let k = cores.len();
                    let mut commits = Vec::new();
                    let mut now: Cycle = 0;
                    loop {
                        barrier.wait(pmem); // A: the coordinator published its command
                        if stop.load(SeqCst) {
                            break;
                        }
                        let end = quantum_end.load(SeqCst);
                        // The boundary phase is over, so the locks are
                        // uncontended; hold them for the whole quantum.
                        let mut guards: Vec<_> = lanes[base..base + k]
                            .iter()
                            .map(|m| m.lock().unwrap())
                            .collect();
                        for i in 0..k {
                            guards[i].start_next(cores[i].as_mut());
                            if !guards[i].busy() {
                                cores[i].gate_to(end);
                                pmem.note_progress(base + i, end);
                            }
                        }
                        let mut cyc = now;
                        while cyc < end {
                            if pmem.is_poisoned() {
                                panic!("parallel service: a peer worker panicked");
                            }
                            let mut busy = 0usize;
                            for i in 0..k {
                                if !guards[i].busy() {
                                    continue;
                                }
                                busy += 1;
                                let id = base + i;
                                cores[i].tick(&mut pmem.bus(&mut ports[i], id));
                                pmem.note_progress(id, cyc + 1);
                                cores[i].drain_commits_into(&mut commits);
                                commits.clear();
                                if guards[i].finish_check(cores[i].as_mut(), cyc, end) {
                                    pmem.note_progress(id, end);
                                }
                            }
                            cyc += 1;
                            if busy == 0 {
                                break;
                            }
                            if fast_forward && cyc < end {
                                let target = cores
                                    .iter()
                                    .zip(guards.iter())
                                    .filter(|(_, l)| l.busy())
                                    .map(|(c, _)| c.next_event_cycle())
                                    .min()
                                    .unwrap_or(end)
                                    .min(end);
                                if target > cyc {
                                    for i in 0..k {
                                        if guards[i].busy() {
                                            cores[i].skip_to(target);
                                            pmem.note_progress(base + i, target);
                                        }
                                    }
                                    cyc = target;
                                }
                            }
                        }
                        drop(guards);
                        now = end;
                        barrier.wait(pmem); // B: this chunk's quantum is done
                    }
                    cores
                        .iter()
                        .map(|c| (c.cycle(), c.retired()))
                        .collect::<Vec<_>>()
                }));
            }

            // Coordinator: the only thread that ever calls the source.
            {
                let _poison = PoisonOnPanic(&pmem);
                let mut now: Cycle = 0;
                loop {
                    // Workers are parked at phase A, so the lane locks are
                    // free; move the lanes out, consult the source, move
                    // them back.
                    let mut snapshot: Vec<Lane> = lanes
                        .iter()
                        .map(|m| std::mem::take(&mut *m.lock().unwrap()))
                        .collect();
                    let go = source.boundary(now, &mut snapshot);
                    for (m, l) in lanes.iter().zip(snapshot) {
                        *m.lock().unwrap() = l;
                    }
                    if !go {
                        stop.store(true, SeqCst);
                        barrier.wait(&pmem); // release workers into their exit
                        break;
                    }
                    let end = now + q;
                    assert!(end <= max_cycles, "service run exceeded {max_cycles} cycles");
                    quantum_end.store(end, SeqCst);
                    barrier.wait(&pmem); // A
                    barrier.wait(&pmem); // B
                    now = end;
                }
                cycles = now;
            }

            for h in handles {
                match h.join() {
                    Ok(chunk_results) => per_core.extend(chunk_results),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });

        let mem = pmem.into_system(ports);
        CmpResult {
            model: self.model_label,
            per_core,
            cycles,
            mem: mem.stats(),
        }
    }
}

/// A spinning phase barrier that aborts (panics) when the shared horizon
/// table is poisoned, so a panicking worker can never strand its peers —
/// `std::sync::Barrier` would deadlock there. Generation-counted: safe
/// for arbitrarily many reuse phases.
struct QuantumBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicU64,
}

impl QuantumBarrier {
    fn new(n: usize) -> QuantumBarrier {
        QuantumBarrier {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    fn wait(&self, pmem: &ParallelMem) {
        let gen = self.generation.load(SeqCst);
        if self.arrived.fetch_add(1, SeqCst) + 1 == self.n {
            // Reset before the generation bump: nobody re-enters until
            // they observe the new generation.
            self.arrived.store(0, SeqCst);
            self.generation.store(gen + 1, SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(SeqCst) == gen {
                if pmem.is_poisoned() {
                    panic!("parallel service: a peer worker panicked");
                }
                spins = spins.wrapping_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreModel;
    use sst_mem::MemConfig;
    use sst_workloads::{Scale, ServerKernel};

    /// A scripted source: `reqs[i]` arrives at cycle `arrive[i]`, all
    /// dispatched round-robin; used to pin driver semantics without the
    /// full traffic stack.
    struct Script {
        arrivals: Vec<(Cycle, u64)>, // (cycle, insts)
        next: usize,
        rr: usize,
        completions: Vec<(u64, Cycle)>,
        quantum: Cycle,
    }

    impl WorkSource for Script {
        fn quantum(&self) -> Cycle {
            self.quantum
        }
        fn boundary(&mut self, now: Cycle, lanes: &mut [Lane]) -> bool {
            for lane in lanes.iter_mut() {
                self.completions.append(&mut lane.done);
            }
            while self.next < self.arrivals.len() && self.arrivals[self.next].0 <= now {
                let (_, insts) = self.arrivals[self.next];
                lanes[self.rr % lanes.len()].queue.push_back(Request {
                    id: self.next as u64,
                    insts,
                });
                self.rr += 1;
                self.next += 1;
            }
            let drained = self.next == self.arrivals.len()
                && lanes.iter().all(|l| !l.busy() && l.queue.is_empty());
            !drained
        }
    }

    fn kernels(n: usize, seed: u64) -> Vec<ServerKernel> {
        (0..n)
            .map(|slot| ServerKernel::by_name("oltp", Scale::Smoke, seed + slot as u64, slot).unwrap())
            .collect()
    }

    fn run_script(threads: usize, fast_forward: bool) -> (CmpResult, Vec<(u64, Cycle)>) {
        let ks = kernels(3, 7);
        let programs: Vec<&sst_isa::Program> = ks.iter().map(|k| &k.workload.program).collect();
        let mut sys = CmpSystem::from_programs(CoreModel::InOrder, &programs, &MemConfig::default())
            .with_threads(threads);
        if !fast_forward {
            sys = sys.without_fast_forward();
        }
        let mut src = Script {
            arrivals: (0..24).map(|i| (i * 700, 200 + (i % 3) * 50)).collect(),
            next: 0,
            rr: 0,
            completions: Vec::new(),
            quantum: 256,
        };
        let r = sys.run_service(&mut src, 50_000_000);
        (r, src.completions)
    }

    #[test]
    fn serves_all_requests_and_stops() {
        let (r, completions) = run_script(1, true);
        assert_eq!(completions.len(), 24);
        assert!(r.cycles > 0 && r.cycles % 256 == 0);
        // Every core ends on the final chip clock.
        for &(c, _) in &r.per_core {
            assert_eq!(c, r.cycles);
        }
        // Completions are at or after each request's arrival.
        for &(id, cyc) in &completions {
            assert!(cyc >= (id * 700), "req {id} done at {cyc}");
        }
    }

    #[test]
    fn parallel_and_fast_forward_are_transparent() {
        let base = run_script(1, true);
        for (threads, ff) in [(1, false), (2, true), (3, true), (2, false)] {
            let other = run_script(threads, ff);
            assert_eq!(base.0, other.0, "threads={threads} ff={ff}");
            assert_eq!(base.1, other.1, "threads={threads} ff={ff}");
        }
    }
}
