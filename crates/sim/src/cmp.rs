//! Chip-multiprocessor simulation: `n` cores over a shared L2, running a
//! multiprogrammed workload mix (disjoint address slots, as in the paper's
//! throughput methodology — no data sharing, so no coherence traffic).
//!
//! # Serial and parallel drivers
//!
//! [`CmpSystem::run`] has two byte-identical execution strategies,
//! selected with [`CmpSystem::with_threads`]:
//!
//! * **Serial** (`threads <= 1`, the default): one thread ticks every
//!   core each cycle in ascending core-id order against the shared
//!   memory system — the reference interleaving.
//! * **Parallel** (`threads > 1`): cores are split into contiguous
//!   chunks, one worker thread per chunk. Each worker is a miniature
//!   serial driver over its chunk (same tick order, same chunk-local
//!   lockstep fast-forward), and every core reaches the shared L2/DRAM
//!   through a gated [`sst_mem::ParallelMem`] bus that blocks until the
//!   core's deterministic turn. Shared state therefore observes the
//!   exact serial interleaving, and the final [`CmpResult`] — per-core
//!   cycles and instructions, makespan, every memory counter — is
//!   byte-identical to a `threads = 1` run. The equivalence suite in
//!   `crates/sim/tests/parallel_cmp.rs` enforces this across models,
//!   mixes, and thread counts.

use sst_mem::{Cycle, MemConfig, MemPort, MemStats, MemSystem, ParallelMem};
use sst_prng::splitmix64;
use sst_uarch::Core;
use sst_workloads::{Scale, Workload};

use crate::CoreModel;

/// Derives core `id`'s workload seed from the run seed.
///
/// Seeds are element `id` of the SplitMix64 stream anchored at `seed`,
/// so distinct `(seed, id)` pairs map to distinct, well-mixed streams.
/// (The old `seed + id` derivation collided for adjacent pairs: seed 5
/// core 1 ran the same instruction stream as seed 6 core 0.)
fn core_seed(seed: u64, id: usize) -> u64 {
    let mut s = seed.wrapping_add((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut s)
}

/// Result of a CMP run.
#[derive(Clone, Debug, PartialEq)]
pub struct CmpResult {
    /// Model label.
    pub model: String,
    /// Per-core (cycles, instructions) at each core's own halt.
    pub per_core: Vec<(Cycle, u64)>,
    /// Cycles until every core halted.
    pub cycles: Cycle,
    /// Shared memory statistics.
    pub mem: MemStats,
}

impl CmpResult {
    /// Aggregate throughput: total instructions / makespan cycles.
    pub fn throughput_ipc(&self) -> f64 {
        let insts: u64 = self.per_core.iter().map(|&(_, i)| i).sum();
        insts as f64 / self.cycles.max(1) as f64
    }

    /// Mean per-core IPC measured over each core's own runtime.
    pub fn mean_core_ipc(&self) -> f64 {
        let sum: f64 = self
            .per_core
            .iter()
            .map(|&(c, i)| i as f64 / c.max(1) as f64)
            .sum();
        sum / self.per_core.len().max(1) as f64
    }
}

/// An `n`-core chip: private L1s, shared banked L2, one DRAM channel.
pub struct CmpSystem {
    pub(crate) cores: Vec<Box<dyn Core>>,
    pub(crate) mem: MemSystem,
    pub(crate) model_label: String,
    pub(crate) fast_forward: bool,
    pub(crate) threads: usize,
}

impl CmpSystem {
    /// Builds a CMP where every core runs `workload_name` (per-core seeds
    /// and address slots differ, so the mix is homogeneous but not
    /// identical).
    pub fn homogeneous(
        model: CoreModel,
        workload_name: &str,
        scale: Scale,
        seed: u64,
        n_cores: usize,
        mem_cfg: &MemConfig,
    ) -> CmpSystem {
        assert!(n_cores > 0);
        let names = vec![workload_name; n_cores];
        CmpSystem::mix(model, &names, scale, seed, mem_cfg)
    }

    /// Builds a CMP from an explicit per-core workload list.
    pub fn mix(model: CoreModel, mix: &[&str], scale: Scale, seed: u64, mem_cfg: &MemConfig) -> CmpSystem {
        assert!(!mix.is_empty());
        let mut mem = MemSystem::new(mem_cfg, mix.len());
        let mut cores: Vec<Box<dyn Core>> = Vec::new();
        for (id, name) in mix.iter().enumerate() {
            let w = Workload::by_name_slot(name, scale, core_seed(seed, id), id)
                .expect("known workload");
            // Each slot's image goes to its own port: slots are disjoint
            // 64 GiB ranges, so the per-port split is exact.
            w.program.load_into(mem.port_mem_mut(id));
            cores.push(model.build(id, &w.program));
        }
        CmpSystem {
            cores,
            mem,
            model_label: model.label(),
            fast_forward: true,
            threads: 1,
        }
    }

    /// Builds a CMP whose core `i` runs `programs[i]` directly, with no
    /// workload lookup — the service-driver path (`run_service`) hands
    /// endless server kernels here. Each program's text/data must live in
    /// address slot `i` (`Workload::by_name_slot`-style), because each
    /// slot's image is loaded into port `i`'s private memory.
    pub fn from_programs(
        model: CoreModel,
        programs: &[&sst_isa::Program],
        mem_cfg: &MemConfig,
    ) -> CmpSystem {
        assert!(!programs.is_empty());
        let mut mem = MemSystem::new(mem_cfg, programs.len());
        let mut cores: Vec<Box<dyn Core>> = Vec::new();
        for (id, p) in programs.iter().enumerate() {
            p.load_into(mem.port_mem_mut(id));
            cores.push(model.build(id, p));
        }
        CmpSystem {
            cores,
            mem,
            model_label: model.label(),
            fast_forward: true,
            threads: 1,
        }
    }

    /// Disables idle-cycle fast-forwarding (see
    /// `System::without_fast_forward`); for the equivalence tests and
    /// debugging only — results are identical either way.
    pub fn without_fast_forward(mut self) -> CmpSystem {
        self.fast_forward = false;
        self
    }

    /// Ticks cores on `threads` worker threads (contiguous chunks of the
    /// core list). Results are byte-identical for every thread count —
    /// shared-memory arbitration is replayed in the exact serial order —
    /// so this is purely a wall-clock knob. `threads <= 1` runs the
    /// serial driver.
    pub fn with_threads(mut self, threads: usize) -> CmpSystem {
        self.threads = threads.max(1);
        self
    }

    /// Runs until every core halts (cores that finish early sit idle,
    /// matching a fixed-work throughput experiment).
    ///
    /// # Panics
    ///
    /// Panics if any core fails to halt within `max_cycles`.
    pub fn run(self, max_cycles: Cycle) -> CmpResult {
        if self.threads > 1 && self.cores.len() > 1 {
            return self.run_parallel(max_cycles);
        }
        self.run_serial(max_cycles)
    }

    fn run_serial(mut self, max_cycles: Cycle) -> CmpResult {
        let n = self.cores.len();
        let mut per_core: Vec<Option<(Cycle, u64)>> = vec![None; n];
        let mut commits = Vec::new();
        let mut done = 0;
        let mut now: Cycle = 0;
        while done < n {
            assert!(now < max_cycles, "CMP did not finish in {max_cycles} cycles");
            for (i, core) in self.cores.iter_mut().enumerate() {
                if per_core[i].is_some() {
                    continue;
                }
                core.tick(&mut self.mem.bus(i));
                core.drain_commits_into(&mut commits); // throughput runs skip cosim
                commits.clear();
                if core.halted() {
                    per_core[i] = Some((core.cycle(), core.retired()));
                    done += 1;
                }
            }
            now += 1;
            if self.fast_forward && done < n {
                // All active cores share one clock, so the chip may only
                // jump to the earliest wake across them — and the jump is
                // applied to every active core in lockstep. Clamping to
                // `max_cycles` keeps the wedge assert firing on schedule.
                let target = self
                    .cores
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| per_core[*i].is_none())
                    .map(|(_, c)| c.next_event_cycle())
                    .min()
                    .unwrap_or(now)
                    .min(max_cycles);
                if target > now {
                    for (i, core) in self.cores.iter_mut().enumerate() {
                        if per_core[i].is_none() {
                            core.skip_to(target);
                        }
                    }
                    now = target;
                }
            }
        }
        CmpResult {
            model: self.model_label,
            per_core: per_core.into_iter().map(|x| x.expect("all halted")).collect(),
            cycles: now,
            mem: self.mem.stats(),
        }
    }

    /// The multi-threaded driver: contiguous core chunks on
    /// `std::thread::scope` workers, shared memory behind the horizon
    /// gate. See the module docs for why this reproduces the serial run
    /// exactly.
    fn run_parallel(mut self, max_cycles: Cycle) -> CmpResult {
        let n = self.cores.len();
        let chunk = n.div_ceil(self.threads.min(n));
        let (mut ports, pmem) = self.mem.into_parallel();
        let fast_forward = self.fast_forward;

        let mut per_core: Vec<(Cycle, u64)> = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (ci, (cores, ports)) in self
                .cores
                .chunks_mut(chunk)
                .zip(ports.chunks_mut(chunk))
                .enumerate()
            {
                let pmem = &pmem;
                handles.push(s.spawn(move || {
                    let _poison = PoisonOnPanic(pmem);
                    run_chunk(cores, ports, ci * chunk, pmem, max_cycles, fast_forward)
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(chunk_results) => per_core.extend(chunk_results),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });

        // The serial driver's final clock is the cycle after the last
        // halt tick, which is exactly the slowest core's own cycle count.
        let cycles = per_core.iter().map(|&(c, _)| c).max().expect("nonempty");
        let mem = pmem.into_system(ports);
        CmpResult {
            model: self.model_label,
            per_core,
            cycles,
            mem: mem.stats(),
        }
    }
}

/// Poisons the shared horizon table if the worker unwinds, so peers
/// spin-waiting on this worker's progress panic instead of hanging.
/// Shared with the service driver in `crate::service`.
pub(crate) struct PoisonOnPanic<'a>(pub(crate) &'a ParallelMem);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// A miniature serial driver over one contiguous chunk of cores
/// (`base..base + cores.len()`): same per-cycle tick order and the same
/// lockstep fast-forward as the serial driver, but chunk-local. Skipped
/// cycles provably touch no memory (the `next_event_cycle` contract), so
/// chunk-local skipping cannot reorder shared-memory traffic.
fn run_chunk(
    cores: &mut [Box<dyn Core>],
    ports: &mut [MemPort],
    base: usize,
    pmem: &ParallelMem,
    max_cycles: Cycle,
    fast_forward: bool,
) -> Vec<(Cycle, u64)> {
    let n = cores.len();
    let mut per_core: Vec<Option<(Cycle, u64)>> = vec![None; n];
    let mut commits = Vec::new();
    let mut done = 0;
    let mut now: Cycle = 0;
    while done < n {
        assert!(now < max_cycles, "CMP did not finish in {max_cycles} cycles");
        if pmem.is_poisoned() {
            panic!("parallel CMP: a peer worker panicked");
        }
        for (i, core) in cores.iter_mut().enumerate() {
            if per_core[i].is_some() {
                continue;
            }
            let id = base + i;
            core.tick(&mut pmem.bus(&mut ports[i], id));
            pmem.note_progress(id, now + 1);
            core.drain_commits_into(&mut commits); // throughput runs skip cosim
            commits.clear();
            if core.halted() {
                per_core[i] = Some((core.cycle(), core.retired()));
                done += 1;
                pmem.note_halted(id);
            }
        }
        now += 1;
        if fast_forward && done < n {
            let target = cores
                .iter()
                .enumerate()
                .filter(|(i, _)| per_core[*i].is_none())
                .map(|(_, c)| c.next_event_cycle())
                .min()
                .unwrap_or(now)
                .min(max_cycles);
            if target > now {
                for (i, core) in cores.iter_mut().enumerate() {
                    if per_core[i].is_none() {
                        core.skip_to(target);
                        pmem.note_progress(base + i, target);
                    }
                }
                now = target;
            }
        }
    }
    per_core.into_iter().map(|x| x.expect("all halted")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_mix_runs() {
        let r = CmpSystem::mix(
            CoreModel::Sst,
            &["gzip", "gzip", "gzip", "gzip"],
            Scale::Smoke,
            1,
            &MemConfig::default(),
        )
        .run(100_000_000);
        assert_eq!(r.per_core.len(), 4);
        assert!(r.throughput_ipc() > 0.0);
        assert!(r.mean_core_ipc() > 0.0);
    }

    #[test]
    fn shared_l2_sees_all_cores() {
        let r = CmpSystem::homogeneous(
            CoreModel::InOrder,
            "erp",
            Scale::Smoke,
            9,
            2,
            &MemConfig::default(),
        )
        .run(200_000_000);
        assert!(r.mem.l1d[0].accesses > 0);
        assert!(r.mem.l1d[1].accesses > 0);
        assert!(r.mem.l2.accesses > 0);
    }

    #[test]
    fn more_cores_more_throughput_when_uncontended() {
        let one = CmpSystem::homogeneous(
            CoreModel::InOrder,
            "gzip",
            Scale::Smoke,
            5,
            1,
            &MemConfig::default(),
        )
        .run(200_000_000);
        let four = CmpSystem::homogeneous(
            CoreModel::InOrder,
            "gzip",
            Scale::Smoke,
            5,
            4,
            &MemConfig::default(),
        )
        .run(200_000_000);
        assert!(
            four.throughput_ipc() > one.throughput_ipc() * 2.5,
            "cache-resident work should scale: {} vs {}",
            four.throughput_ipc(),
            one.throughput_ipc()
        );
    }

    #[test]
    fn core_seeds_do_not_collide_across_adjacent_runs() {
        // The old `seed + id` derivation made (seed, id) and
        // (seed + 1, id - 1) share a workload stream.
        assert_ne!(core_seed(5, 1), core_seed(6, 0));
        assert_ne!(core_seed(5, 0), core_seed(5, 1));
        // And the mapping is deterministic.
        assert_eq!(core_seed(5, 1), core_seed(5, 1));
    }

    #[test]
    fn two_threads_match_serial_quickcheck() {
        // The full sweep lives in tests/parallel_cmp.rs; this is the
        // fast in-crate smoke check.
        let build = || {
            CmpSystem::mix(
                CoreModel::InOrder,
                &["gzip", "erp", "gzip"],
                Scale::Smoke,
                11,
                &MemConfig::default(),
            )
        };
        let serial = build().run(200_000_000);
        let parallel = build().with_threads(2).run(200_000_000);
        assert_eq!(serial, parallel);
    }
}
