//! Chip-multiprocessor simulation: `n` cores over a shared L2, running a
//! multiprogrammed workload mix (disjoint address slots, as in the paper's
//! throughput methodology — no data sharing, so no coherence traffic).

use sst_mem::{Cycle, MemConfig, MemStats, MemSystem};
use sst_uarch::Core;
use sst_workloads::{Scale, Workload};

use crate::CoreModel;

/// Result of a CMP run.
#[derive(Clone, Debug, PartialEq)]
pub struct CmpResult {
    /// Model label.
    pub model: String,
    /// Per-core (cycles, instructions) at each core's own halt.
    pub per_core: Vec<(Cycle, u64)>,
    /// Cycles until every core halted.
    pub cycles: Cycle,
    /// Shared memory statistics.
    pub mem: MemStats,
}

impl CmpResult {
    /// Aggregate throughput: total instructions / makespan cycles.
    pub fn throughput_ipc(&self) -> f64 {
        let insts: u64 = self.per_core.iter().map(|&(_, i)| i).sum();
        insts as f64 / self.cycles.max(1) as f64
    }

    /// Mean per-core IPC measured over each core's own runtime.
    pub fn mean_core_ipc(&self) -> f64 {
        let sum: f64 = self
            .per_core
            .iter()
            .map(|&(c, i)| i as f64 / c.max(1) as f64)
            .sum();
        sum / self.per_core.len().max(1) as f64
    }
}

/// An `n`-core chip: private L1s, shared banked L2, one DRAM channel.
pub struct CmpSystem {
    cores: Vec<Box<dyn Core>>,
    mem: MemSystem,
    model_label: String,
    fast_forward: bool,
}

impl CmpSystem {
    /// Builds a CMP where every core runs `workload_name` (per-core seeds
    /// and address slots differ, so the mix is homogeneous but not
    /// identical).
    pub fn homogeneous(
        model: CoreModel,
        workload_name: &str,
        scale: Scale,
        seed: u64,
        n_cores: usize,
        mem_cfg: &MemConfig,
    ) -> CmpSystem {
        assert!(n_cores > 0);
        let mut mem = MemSystem::new(mem_cfg, n_cores);
        let mut cores: Vec<Box<dyn Core>> = Vec::new();
        for id in 0..n_cores {
            let w = Workload::by_name_slot(workload_name, scale, seed + id as u64, id)
                .expect("known workload");
            w.program.load_into(mem.mem_mut());
            cores.push(model.build(id, &w.program));
        }
        CmpSystem {
            cores,
            mem,
            model_label: model.label(),
            fast_forward: true,
        }
    }

    /// Builds a CMP from an explicit per-core workload list.
    pub fn mix(model: CoreModel, mix: &[&str], scale: Scale, seed: u64, mem_cfg: &MemConfig) -> CmpSystem {
        assert!(!mix.is_empty());
        let mut mem = MemSystem::new(mem_cfg, mix.len());
        let mut cores: Vec<Box<dyn Core>> = Vec::new();
        for (id, name) in mix.iter().enumerate() {
            let w = Workload::by_name_slot(name, scale, seed + id as u64, id)
                .expect("known workload");
            w.program.load_into(mem.mem_mut());
            cores.push(model.build(id, &w.program));
        }
        CmpSystem {
            cores,
            mem,
            model_label: model.label(),
            fast_forward: true,
        }
    }

    /// Disables idle-cycle fast-forwarding (see
    /// `System::without_fast_forward`); for the equivalence tests and
    /// debugging only — results are identical either way.
    pub fn without_fast_forward(mut self) -> CmpSystem {
        self.fast_forward = false;
        self
    }

    /// Runs until every core halts (cores that finish early sit idle,
    /// matching a fixed-work throughput experiment).
    ///
    /// # Panics
    ///
    /// Panics if any core fails to halt within `max_cycles`.
    pub fn run(mut self, max_cycles: Cycle) -> CmpResult {
        let n = self.cores.len();
        let mut per_core: Vec<Option<(Cycle, u64)>> = vec![None; n];
        let mut commits = Vec::new();
        let mut done = 0;
        let mut now: Cycle = 0;
        while done < n {
            assert!(now < max_cycles, "CMP did not finish in {max_cycles} cycles");
            for (i, core) in self.cores.iter_mut().enumerate() {
                if per_core[i].is_some() {
                    continue;
                }
                core.tick(&mut self.mem);
                core.drain_commits_into(&mut commits); // throughput runs skip cosim
                commits.clear();
                if core.halted() {
                    per_core[i] = Some((core.cycle(), core.retired()));
                    done += 1;
                }
            }
            now += 1;
            if self.fast_forward && done < n {
                // All active cores share one clock, so the chip may only
                // jump to the earliest wake across them — and the jump is
                // applied to every active core in lockstep. Clamping to
                // `max_cycles` keeps the wedge assert firing on schedule.
                let target = self
                    .cores
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| per_core[*i].is_none())
                    .map(|(_, c)| c.next_event_cycle())
                    .min()
                    .unwrap_or(now)
                    .min(max_cycles);
                if target > now {
                    for (i, core) in self.cores.iter_mut().enumerate() {
                        if per_core[i].is_none() {
                            core.skip_to(target);
                        }
                    }
                    now = target;
                }
            }
        }
        CmpResult {
            model: self.model_label,
            per_core: per_core.into_iter().map(|x| x.expect("all halted")).collect(),
            cycles: now,
            mem: self.mem.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_core_mix_runs() {
        let r = CmpSystem::mix(
            CoreModel::Sst,
            &["gzip", "gzip", "gzip", "gzip"],
            Scale::Smoke,
            1,
            &MemConfig::default(),
        )
        .run(100_000_000);
        assert_eq!(r.per_core.len(), 4);
        assert!(r.throughput_ipc() > 0.0);
        assert!(r.mean_core_ipc() > 0.0);
    }

    #[test]
    fn shared_l2_sees_all_cores() {
        let r = CmpSystem::homogeneous(
            CoreModel::InOrder,
            "erp",
            Scale::Smoke,
            9,
            2,
            &MemConfig::default(),
        )
        .run(200_000_000);
        assert!(r.mem.l1d[0].accesses > 0);
        assert!(r.mem.l1d[1].accesses > 0);
        assert!(r.mem.l2.accesses > 0);
    }

    #[test]
    fn more_cores_more_throughput_when_uncontended() {
        let one = CmpSystem::homogeneous(
            CoreModel::InOrder,
            "gzip",
            Scale::Smoke,
            5,
            1,
            &MemConfig::default(),
        )
        .run(200_000_000);
        let four = CmpSystem::homogeneous(
            CoreModel::InOrder,
            "gzip",
            Scale::Smoke,
            5,
            4,
            &MemConfig::default(),
        )
        .run(200_000_000);
        assert!(
            four.throughput_ipc() > one.throughput_ipc() * 2.5,
            "cache-resident work should scale: {} vs {}",
            four.throughput_ipc(),
            one.throughput_ipc()
        );
    }
}
