//! Structure-count area/power proxy (experiment E9).
//!
//! The paper's efficiency argument is structural: an SST core spends its
//! transistors on checkpoints, a deferred queue, and a store buffer, while
//! an OoO core needs rename tables, a reorder buffer, an issue-window CAM,
//! and a load/store disambiguation CAM. This module counts the storage
//! bits of those structures — SRAM bits and (power-dominant) CAM bits
//! separately — as a technology-neutral proxy. It is **not** a circuit
//! model; see DESIGN.md substitution S4.

use sst_core::SstConfig;
use sst_inorder::InOrderConfig;
use sst_ooo::OooConfig;

use crate::CoreModel;

/// Storage-bit estimate for one core's pipeline structures (caches
/// excluded — they are identical across the study).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaEstimate {
    /// Plain SRAM bits.
    pub sram_bits: u64,
    /// Content-addressed bits (searched every cycle: issue window wakeup,
    /// LSQ search). These dominate dynamic power per bit.
    pub cam_bits: u64,
}

impl AreaEstimate {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.sram_bits + self.cam_bits
    }

    /// A single relative "cost" figure weighting CAM bits 4x (a common
    /// rule of thumb for search-port energy/area overhead).
    pub fn weighted_cost(&self) -> f64 {
        self.sram_bits as f64 + 4.0 * self.cam_bits as f64
    }
}

const REG_BITS: u64 = 64;
const ARCH_REGS: u64 = 64;
const ADDR_BITS: u64 = 48;
const SEQ_TAG_BITS: u64 = 10;
const INST_BITS: u64 = 32;

/// Estimates the in-order baseline: one register file plus a scoreboard.
pub fn inorder_area(_cfg: &InOrderConfig) -> AreaEstimate {
    AreaEstimate {
        sram_bits: ARCH_REGS * REG_BITS + ARCH_REGS, // regfile + ready bits
        cam_bits: 0,
    }
}

/// Estimates an SST-family core: register image with NT bits, checkpoint
/// images, the deferred queue, and the store buffer.
pub fn sst_area(cfg: &SstConfig) -> AreaEstimate {
    let live_image = ARCH_REGS * (REG_BITS + 1 + SEQ_TAG_BITS); // value + NT + writer
    let checkpoints = cfg.checkpoints as u64 * (ARCH_REGS * REG_BITS + ADDR_BITS);
    // DQ entry: inst + pc + one captured operand + producer tags + flags.
    // (ROCK-style: an instruction deferred for an NT source captures the
    // *other* operand; the rare both-captured cases spill into a second
    // entry, which the count amortizes away.)
    let dq_entry = INST_BITS + ADDR_BITS + REG_BITS + 2 * SEQ_TAG_BITS + 8;
    let dq = cfg.dq_entries as u64 * dq_entry;
    // Store buffer entry: addr + data + seq + flags. The address field is
    // searched by loads: CAM.
    let stb_cam = cfg.stb_entries as u64 * ADDR_BITS;
    let stb_sram = cfg.stb_entries as u64 * (REG_BITS + SEQ_TAG_BITS + 8);
    AreaEstimate {
        sram_bits: live_image + checkpoints + dq + stb_sram,
        cam_bits: stb_cam,
    }
}

/// Estimates an out-of-order core: rename map + physical register file +
/// ROB + issue-window CAM + LSQ CAM.
pub fn ooo_area(cfg: &OooConfig) -> AreaEstimate {
    let phys = (ARCH_REGS + cfg.rob_entries as u64) * REG_BITS;
    let rat = ARCH_REGS * 8; // 8-bit phys tags
    let free_list = cfg.rob_entries as u64 * 8;
    let future_file = ARCH_REGS * REG_BITS; // rename-time value copies
    // ROB entry: inst, pc, source/dest tags, the *old* mapping and value
    // needed for selective squash recovery, and flags — exactly the fields
    // this workspace's model stores per entry.
    let rob_entry = INST_BITS + ADDR_BITS + 2 * 8 + 8 + 8 + REG_BITS + 8;
    let rob = cfg.rob_entries as u64 * rob_entry;
    // Issue queue: every entry compares two source tags against every
    // wakeup broadcast bus, so the comparator count scales with issue
    // width.
    let iq_cam = cfg.iq_entries as u64 * 2 * 8 * cfg.issue_width as u64;
    let iq_sram = cfg.iq_entries as u64 * (INST_BITS + 16);
    // LSQ: address CAMs searched by every load and store.
    let lsq_cam = (cfg.lq_entries + cfg.sq_entries) as u64 * ADDR_BITS;
    let lsq_sram = cfg.sq_entries as u64 * REG_BITS + (cfg.lq_entries + cfg.sq_entries) as u64 * SEQ_TAG_BITS;
    AreaEstimate {
        sram_bits: phys + rat + free_list + future_file + rob + iq_sram + lsq_sram,
        cam_bits: iq_cam + lsq_cam,
    }
}

/// Estimates any lineup model.
pub fn model_area(model: &CoreModel) -> AreaEstimate {
    match model {
        CoreModel::InOrder => inorder_area(&InOrderConfig::default()),
        CoreModel::CustomInOrder(c) => inorder_area(c),
        CoreModel::Scout => sst_area(&SstConfig::scout()),
        CoreModel::ExecuteAhead => sst_area(&SstConfig::execute_ahead()),
        CoreModel::Sst => sst_area(&SstConfig::sst()),
        CoreModel::CustomSst(c) => sst_area(c),
        CoreModel::Ooo32 => ooo_area(&OooConfig::ooo_32()),
        CoreModel::Ooo64 => ooo_area(&OooConfig::ooo_64()),
        CoreModel::Ooo128 => ooo_area(&OooConfig::ooo_128()),
        CoreModel::CustomOoo(c) => ooo_area(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_the_papers_argument() {
        let io = model_area(&CoreModel::InOrder);
        let sst = model_area(&CoreModel::Sst);
        let o128 = model_area(&CoreModel::Ooo128);
        assert!(io.total_bits() < sst.total_bits());
        assert!(
            sst.weighted_cost() < o128.weighted_cost(),
            "SST ({}) must be cheaper than a large OoO ({})",
            sst.weighted_cost(),
            o128.weighted_cost()
        );
        assert!(o128.cam_bits > sst.cam_bits * 2, "OoO is CAM-heavy");
    }

    #[test]
    fn ooo_scales_with_window() {
        let a = model_area(&CoreModel::Ooo32);
        let b = model_area(&CoreModel::Ooo128);
        assert!(b.total_bits() > a.total_bits());
        assert!(b.cam_bits > a.cam_bits);
    }

    #[test]
    fn sst_scales_with_dq() {
        let small = sst_area(&SstConfig {
            dq_entries: 16,
            ..SstConfig::sst()
        });
        let big = sst_area(&SstConfig {
            dq_entries: 512,
            ..SstConfig::sst()
        });
        assert!(big.sram_bits > small.sram_bits);
        assert_eq!(big.cam_bits, small.cam_bits, "the DQ is not a CAM");
    }
}
