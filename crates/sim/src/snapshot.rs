//! Versioned run snapshots.
//!
//! A [`Snapshot`] is a self-contained byte image of a paused
//! [`System`](crate::System) run: a header naming the format version,
//! model, and workload, followed by the run accumulators, the
//! co-simulation checker (reference interpreter + memory image), the
//! core's complete timing state, and the memory hierarchy. The format is
//! the workspace's hand-rolled little-endian codec (`sst_isa::snap`) —
//! no external serialization dependency — and restoring is strictly
//! validating: truncated or corrupt bytes produce a structured
//! [`SnapError`](sst_isa::SnapError), never a panic, and shape fields
//! are checked against the rebuilt configuration before any allocation.
//!
//! Determinism contract: serializing the same paused state twice yields
//! identical bytes (unordered containers are written in sorted key
//! order), so snapshot → resume → snapshot round-trips byte-identically.

use sst_isa::{SnapError, SnapReader};

/// Leading 4-byte tag of every run snapshot.
pub(crate) const SNAPSHOT_MAGIC: &str = "RSNP";

/// Identification fields parsed from a snapshot's fixed header, without
/// touching the (much larger) state payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version (`sst_isa::SNAPSHOT_VERSION` at capture time).
    pub version: u32,
    /// Core-model label the run was captured under.
    pub model: String,
    /// Workload name the run was captured under.
    pub workload: String,
    /// Total instructions committed at the pause point.
    pub insts: u64,
}

/// A paused run, as opaque bytes. Produced by
/// [`System::snapshot`](crate::System::snapshot), consumed by
/// [`System::resume`](crate::System::resume); the bytes are stable to
/// write to disk and reload in a later process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Wraps raw snapshot bytes (e.g. read back from disk). No
    /// validation happens here; [`Snapshot::header`] and
    /// [`System::resume`](crate::System::resume) validate on use.
    pub fn from_bytes(bytes: Vec<u8>) -> Snapshot {
        Snapshot { bytes }
    }

    /// The serialized image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` for a zero-length image (never produced by `snapshot`).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Parses just the identification header.
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the bytes do not start with a valid snapshot
    /// header.
    pub fn header(&self) -> Result<SnapshotHeader, SnapError> {
        let mut r = SnapReader::new(&self.bytes);
        r.tag(SNAPSHOT_MAGIC)?;
        let version = r.take_u32()?;
        let model = r.take_str()?;
        let workload = r.take_str()?;
        let _skip_insts = r.take_u64()?;
        let insts = r.take_u64()?;
        Ok(SnapshotHeader {
            version,
            model,
            workload,
            insts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_header_is_an_error_not_a_panic() {
        assert!(Snapshot::from_bytes(vec![]).header().is_err());
        assert!(Snapshot::from_bytes(vec![0xff; 16]).header().is_err());
        assert!(Snapshot::from_bytes(b"RSNP".to_vec()).header().is_err());
    }
}
