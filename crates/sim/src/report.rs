//! Table emission for the experiment binaries: every experiment prints its
//! rows as aligned markdown (for humans) and writes CSV (for plotting).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple rectangular table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "ragged table row");
        self.rows.push(row);
    }

    /// Renders aligned GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, " {:w$} |", c, w = widths[i]);
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-style CSV (cells containing commas, quotes, or
    /// newlines are quoted; embedded quotes are doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &String| {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to `results/<name>.csv` under `dir`, creating
    /// directories as needed, and returns the path written.
    pub fn write_csv(&self, dir: impl AsRef<Path>, name: &str) -> io::Result<std::path::PathBuf> {
        let dir = dir.as_ref().join("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as a percentage with sign ("+18.2%").
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(["a", "model"]);
        t.row(["1", "in-order"]);
        t.row(["22", "sst"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| a  | model"));
        assert!(lines[2].contains("| 1  | in-order |"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        let mut t = Table::new(["x", "y"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(["a"]);
        t.row(["32 KiB, 4-way"]);
        t.row(["say \"hi\""]);
        assert_eq!(t.to_csv(), "a\n\"32 KiB, 4-way\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(1.182), "+18.2%");
        assert_eq!(pct(0.95), "-5.0%");
    }

    #[test]
    fn write_csv_creates_results_dir() {
        let tmp = std::env::temp_dir().join(format!("sst-sim-test-{}", std::process::id()));
        let mut t = Table::new(["a"]);
        t.row(["b"]);
        let p = t.write_csv(&tmp, "t").unwrap();
        assert!(p.exists());
        std::fs::remove_dir_all(&tmp).ok();
    }
}
