//! Lock-step co-simulation against the functional golden model.

use std::fmt;

use sst_isa::{Interp, MemEffect, Program, SnapError, SnapReader, SnapWriter};
use sst_uarch::Commit;

/// A divergence between a core's commit stream and the reference
/// interpreter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CosimError {
    /// Index of the diverging commit (1-based).
    pub at: u64,
    /// Description of the mismatch.
    pub what: String,
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "co-simulation divergence at commit {}: {}", self.at, self.what)
    }
}

impl std::error::Error for CosimError {}

/// Verifies a core's architectural commit stream against the reference
/// interpreter, one instruction at a time.
///
/// Checks: PC, decoded instruction, sequence density, register writes, and
/// store address/size/value. Any mismatch means the timing model corrupted
/// architectural state — the cardinal sin of a speculation mechanism.
pub struct RetireChecker {
    interp: Interp,
    checked: u64,
}

impl RetireChecker {
    /// Creates a checker for `program`.
    pub fn new(program: &Program) -> RetireChecker {
        RetireChecker {
            interp: Interp::new(program),
            checked: 0,
        }
    }

    /// Instructions verified so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    /// `true` once the reference has executed its `halt`.
    pub fn finished(&self) -> bool {
        self.interp.is_halted()
    }

    /// Serializes the checker (reference interpreter plus verified-commit
    /// count) for a run snapshot.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag("CHKR");
        w.put_u64(self.checked);
        self.interp.save_state(w);
    }

    /// Restores state written by [`RetireChecker::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on truncated or corrupt input.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.tag("CHKR")?;
        self.checked = r.take_u64()?;
        self.interp.restore_state(r)
    }

    /// Verifies one commit.
    ///
    /// # Errors
    ///
    /// Returns a [`CosimError`] describing the first divergence.
    pub fn check(&mut self, c: &Commit) -> Result<(), CosimError> {
        let at = self.checked + 1;
        let err = |what: String| CosimError { at, what };
        let ev = self
            .interp
            .step()
            .map_err(|t| err(format!("reference trapped: {t}")))?;
        self.checked = at;
        if c.seq != at {
            return Err(err(format!("sequence {} is not dense", c.seq)));
        }
        if c.pc != ev.pc {
            return Err(err(format!("pc {:#x}, reference {:#x}", c.pc, ev.pc)));
        }
        if c.inst != ev.inst {
            return Err(err(format!("inst {:?}, reference {:?}", c.inst, ev.inst)));
        }
        if c.reg_write != ev.reg_write {
            return Err(err(format!(
                "register write {:?}, reference {:?} (pc {:#x})",
                c.reg_write, ev.reg_write, c.pc
            )));
        }
        match (c.store, ev.mem) {
            (None, MemEffect::Store { .. }) => {
                return Err(err("core missed a store".to_string()))
            }
            (Some(_), MemEffect::None | MemEffect::Load { .. }) => {
                return Err(err("core invented a store".to_string()))
            }
            (Some((addr, bytes, value)), MemEffect::Store { addr: ea, bytes: eb, value: ev_ }) => {
                if (addr, bytes) != (ea, eb) {
                    return Err(err(format!(
                        "store to {addr:#x}/{bytes}, reference {ea:#x}/{eb}"
                    )));
                }
                let mask = if bytes == 8 {
                    u64::MAX
                } else {
                    (1u64 << (bytes * 8)) - 1
                };
                if value & mask != ev_ & mask {
                    return Err(err(format!(
                        "store value {:#x}, reference {:#x}",
                        value & mask,
                        ev_ & mask
                    )));
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_isa::{Asm, Inst, Reg};

    fn tiny_program() -> Program {
        let mut a = Asm::new();
        a.li(Reg::x(1), 7);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn accepts_matching_stream() {
        let p = tiny_program();
        let mut ck = RetireChecker::new(&p);
        ck.check(&Commit {
            seq: 1,
            pc: p.entry,
            inst: p.inst_at(p.entry).unwrap(),
            reg_write: Some((Reg::x(1), 7)),
            store: None,
            at: 0,
        })
        .unwrap();
        assert_eq!(ck.checked(), 1);
        assert!(!ck.finished());
    }

    #[test]
    fn rejects_wrong_value() {
        let p = tiny_program();
        let mut ck = RetireChecker::new(&p);
        let e = ck
            .check(&Commit {
                seq: 1,
                pc: p.entry,
                inst: p.inst_at(p.entry).unwrap(),
                reg_write: Some((Reg::x(1), 8)),
                store: None,
                at: 0,
            })
            .unwrap_err();
        assert!(e.what.contains("register write"), "{e}");
    }

    #[test]
    fn rejects_gapped_seq() {
        let p = tiny_program();
        let mut ck = RetireChecker::new(&p);
        let e = ck
            .check(&Commit {
                seq: 2,
                pc: p.entry,
                inst: p.inst_at(p.entry).unwrap(),
                reg_write: Some((Reg::x(1), 7)),
                store: None,
                at: 0,
            })
            .unwrap_err();
        assert!(e.what.contains("dense"), "{e}");
    }

    #[test]
    fn rejects_invented_store() {
        let p = tiny_program();
        let mut ck = RetireChecker::new(&p);
        let e = ck
            .check(&Commit {
                seq: 1,
                pc: p.entry,
                inst: Inst::Halt,
                reg_write: None,
                store: Some((0x100, 8, 1)),
                at: 0,
            })
            .unwrap_err();
        assert!(e.what.contains("inst") || e.what.contains("store"), "{e}");
    }
}
