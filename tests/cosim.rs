//! Whole-suite co-simulation: every workload on every lineup model, every
//! commit checked against the functional reference. This is the strongest
//! end-to-end correctness statement in the repository.

use sst_sim::{CoreModel, System};
use sst_workloads::{Scale, Workload};

#[test]
fn all_models_all_workloads_cosim() {
    for name in Workload::all_names() {
        for model in CoreModel::lineup() {
            let label = model.label();
            let w = Workload::by_name(name, Scale::Smoke, 77).expect("known");
            let r = System::new(model, &w)
                .run_checked(2_000_000_000)
                .unwrap_or_else(|e| panic!("{name} on {label}: {e}"));
            assert!(r.insts > 100, "{name}/{label} barely ran");
        }
    }
}

#[test]
fn identical_commit_counts_across_models() {
    // All machines execute the same architectural program: committed
    // instruction counts must agree exactly.
    for name in ["oltp", "web", "gcc", "stream"] {
        let mut counts = Vec::new();
        for model in CoreModel::lineup() {
            let label = model.label();
            let w = Workload::by_name(name, Scale::Smoke, 13).expect("known");
            let r = System::measure(model, &w, 2_000_000_000);
            counts.push((label, r.insts));
        }
        let first = counts[0].1;
        for (label, c) in &counts {
            assert_eq!(*c, first, "{name}: {label} committed {c} != {first}");
        }
    }
}

#[test]
fn seeds_change_timing_not_correctness() {
    for seed in [1u64, 2, 3] {
        let w = Workload::by_name("erp", Scale::Smoke, seed).expect("known");
        System::new(CoreModel::Sst, &w)
            .run_checked(2_000_000_000)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn determinism_same_seed_same_cycles() {
    let run = || {
        let w = Workload::by_name("oltp", Scale::Smoke, 4).expect("known");
        System::measure(CoreModel::Sst, &w, 2_000_000_000).cycles
    };
    assert_eq!(run(), run(), "simulation must be deterministic");
}
