//! Smoke-scale versions of the paper's experiments (E3-E12 shapes): each
//! assertion checks the *direction* the full harness must reproduce, at a
//! size small enough for CI.

use sst_core::SstConfig;
use sst_mem::MemConfig;
use sst_sim::{area, geomean, CmpSystem, CoreModel, System};
use sst_workloads::{Scale, Workload};

const MAX: u64 = 2_000_000_000;

fn ipc(model: CoreModel, name: &str, seed: u64) -> f64 {
    let w = Workload::by_name(name, Scale::Smoke, seed).expect("known");
    System::measure(model, &w, MAX).measured_ipc()
}

fn ipc_mem(model: CoreModel, name: &str, seed: u64, cfg: &MemConfig) -> f64 {
    let w = Workload::by_name(name, Scale::Smoke, seed).expect("known");
    System::with_mem(model, &w, cfg)
        .run_checked(MAX)
        .expect("cosim clean")
        .measured_ipc()
}

/// E3 shape: scout/EA/SST all speed up the commercial suite over in-order,
/// in that order.
#[test]
fn e3_shape_family_ordering() {
    let mut scout = Vec::new();
    let mut ea = Vec::new();
    let mut sst = Vec::new();
    for name in Workload::commercial_names() {
        let base = ipc(CoreModel::InOrder, name, 50);
        scout.push(ipc(CoreModel::Scout, name, 50) / base);
        ea.push(ipc(CoreModel::ExecuteAhead, name, 50) / base);
        sst.push(ipc(CoreModel::Sst, name, 50) / base);
    }
    let (gs, ge, gt) = (geomean(&scout), geomean(&ea), geomean(&sst));
    assert!(gs > 1.05, "scout speedup {gs:.3}");
    // Smoke scale is cold-dominated, where scout and EA are close; the
    // full-scale harness (E3) shows the clean ordering.
    assert!(ge > gs * 0.95, "ea {ge:.3} vs scout {gs:.3}");
    assert!(gt >= ge, "sst {gt:.3} vs ea {ge:.3}");
}

/// E4 shape (the headline): SST per-thread performance >= the large OoO on
/// the commercial suite.
#[test]
fn e4_shape_sst_vs_ooo() {
    let mut ratios = Vec::new();
    for name in Workload::commercial_names() {
        let sst = ipc(CoreModel::Sst, name, 51);
        let ooo = ipc(CoreModel::Ooo128, name, 51);
        ratios.push(sst / ooo);
    }
    let g = geomean(&ratios);
    assert!(g > 1.0, "SST/ooo-128 geomean on commercial: {g:.3}");
}

/// E5 shape: SST's advantage over in-order grows with memory latency.
#[test]
fn e5_shape_latency_sensitivity() {
    let gain_at = |base: u64| {
        let mut cfg = MemConfig::default();
        cfg.dram.base_cycles = base;
        ipc_mem(CoreModel::Sst, "erp", 52, &cfg) / ipc_mem(CoreModel::InOrder, "erp", 52, &cfg)
    };
    let fast = gain_at(120);
    let slow = gain_at(600);
    assert!(
        slow > fast,
        "advantage must grow with latency: {fast:.3} -> {slow:.3}"
    );
}

/// E6 shape: shrinking the DQ hurts; growing it saturates.
#[test]
fn e6_shape_dq_size() {
    let with_dq = |n: usize| {
        let cfg = SstConfig {
            dq_entries: n,
            ..SstConfig::sst()
        };
        ipc(CoreModel::CustomSst(cfg), "oltp", 53)
    };
    let tiny = with_dq(8);
    let small = with_dq(32);
    let big = with_dq(256);
    // Floating-point display rounding can make equal-looking values differ
    // in the last ulp; compare with a tolerance.
    assert!(small >= tiny * 0.98, "dq 32 ({small:.3}) >= dq 8 ({tiny:.3})");
    assert!(big >= small * 0.98, "dq 256 must not collapse");
    assert!(big > tiny * 0.99, "bigger DQ never hurts materially");
}

/// E7 shape: checkpoints 1 -> 2 helps (EA -> SST); more saturates.
#[test]
fn e7_shape_checkpoints() {
    let with_ck = |n: usize| {
        let cfg = SstConfig {
            checkpoints: n,
            ..SstConfig::sst()
        };
        ipc(CoreModel::CustomSst(cfg), "oltp", 54)
    };
    let one = with_ck(1);
    let two = with_ck(2);
    let eight = with_ck(8);
    assert!(two >= one, "2 ckpts ({two:.3}) >= 1 ({one:.3})");
    assert!(eight >= two * 0.97, "8 ckpts must not collapse");
}

/// E8 shape: the store buffer bounds speculation depth on store-heavy code.
#[test]
fn e8_shape_stb_size() {
    let with_stb = |n: usize| {
        let cfg = SstConfig {
            stb_entries: n,
            ..SstConfig::sst()
        };
        ipc(CoreModel::CustomSst(cfg), "gups", 55)
    };
    let tiny = with_stb(2);
    let normal = with_stb(64);
    assert!(
        normal > tiny,
        "stb 64 ({normal:.3}) must beat stb 2 ({tiny:.3}) on gups"
    );
}

/// E9 shape: SST's structures are far cheaper than the big OoO's, so its
/// perf/cost leads even where raw perf ties.
#[test]
fn e9_shape_area_efficiency() {
    let sst_cost = area::model_area(&CoreModel::Sst).weighted_cost();
    let ooo_cost = area::model_area(&CoreModel::Ooo128).weighted_cost();
    assert!(ooo_cost > sst_cost * 1.5, "ooo {ooo_cost} vs sst {sst_cost}");
    let sst_perf = ipc(CoreModel::Sst, "oltp", 56);
    let ooo_perf = ipc(CoreModel::Ooo128, "oltp", 56);
    let sst_eff = sst_perf / sst_cost;
    let ooo_eff = ooo_perf / ooo_cost;
    assert!(
        sst_eff > ooo_eff * 1.3,
        "perf-per-cost must favour SST: {sst_eff:.2e} vs {ooo_eff:.2e}"
    );
}

/// E10 shape: CMP throughput grows with cores but sub-linearly under the
/// shared L2/DRAM.
#[test]
fn e10_shape_cmp_scaling() {
    let tp = |n: usize| {
        CmpSystem::homogeneous(
            CoreModel::Sst,
            "erp",
            Scale::Smoke,
            57,
            n,
            &MemConfig::default(),
        )
        .run(MAX)
        .throughput_ipc()
    };
    let one = tp(1);
    let four = tp(4);
    assert!(four > one * 1.8, "4 cores ({four:.3}) vs 1 ({one:.3})");
    assert!(four < one * 4.2, "no super-linear artifacts");
}

/// E11 shape: SST overlaps misses that the in-order core serializes.
#[test]
fn e11_shape_mlp() {
    let w = Workload::by_name("gups", Scale::Smoke, 58).unwrap();
    let r = System::measure(CoreModel::Sst, &w, MAX);
    // gups has abundant independent misses; SST must overlap them.
    let w2 = Workload::by_name("gups", Scale::Smoke, 58).unwrap();
    let base = System::measure(CoreModel::InOrder, &w2, MAX);
    assert!(
        r.measured_ipc() > base.measured_ipc() * 1.3,
        "sst {:.3} vs inorder {:.3}",
        r.measured_ipc(),
        base.measured_ipc()
    );
}

/// E12 shape: deferred-branch failures happen on branch-behind-miss code
/// but stay a minority of episodes.
#[test]
fn e12_shape_failures() {
    use sst_core::SstCore;
    use sst_mem::MemSystem;
    use sst_uarch::Core;

    let run = |name: &str| {
        let w = Workload::by_name(name, Scale::Smoke, 59).unwrap();
        let mut mem = MemSystem::new(&MemConfig::default(), 1);
        w.program.load_into(mem.mem_mut());
        let mut core = SstCore::new(SstConfig::sst(), 0, &w.program);
        while !core.halted() && core.cycle() < MAX {
            core.tick(&mut mem.bus(0));
        }
        assert!(core.halted());
        core.stats
    };
    // oltp's ~50/50 row predicate sits behind a miss: failures must occur.
    let oltp = run("oltp");
    assert!(
        oltp.fail_branch > 0,
        "oltp's data-dependent branches must sometimes fail"
    );
    // erp's branches are predictable: commits must dominate there.
    let erp = run("erp");
    assert!(
        erp.epochs_committed > erp.fail_branch,
        "commits ({}) should dominate failures ({}) on erp",
        erp.epochs_committed,
        erp.fail_branch
    );
}
