//! Randomized-program co-simulation: structured random programs (random
//! dataflow, memory traffic with aliasing, data-dependent branches, calls)
//! run on every core model and must match the functional reference
//! instruction-for-instruction. This hunts for speculation bugs that
//! hand-written tests miss.

use sst_isa::{Asm, Label, Program, Reg};
use sst_prng::Prng;
use sst_sim::{CoreModel, System};
use sst_workloads::{Scale, Workload};

/// Builds a random but always-terminating program.
fn random_program(seed: u64) -> Program {
    let mut r = Prng::seed_from_u64(seed);
    let mut a = Asm::new();

    // A small near buffer (aliasing traffic) and a big far region (misses).
    let near = a.reserve(512);
    let far_nodes = 2048u64;
    let far = {
        // Random far pointers written host-side.
        let words: Vec<u64> = (0..far_nodes).map(|_| r.gen()).collect();
        a.data_u64(&words)
    };

    a.la(Reg::x(20), near);
    a.la(Reg::x(21), far);
    // Seed some registers.
    for i in 1..12u8 {
        a.li(Reg::x(i), r.gen_range(-1000..1000));
    }
    a.li(Reg::x(31), r.gen_range(30..80)); // outer loop count

    let helper: Option<Label> = if r.gen_bool(0.5) {
        Some(a.label())
    } else {
        None
    };

    let top = a.here();
    let block_count = r.gen_range(3..9);
    for _ in 0..block_count {
        match r.gen_range(0..10) {
            0..=2 => {
                // Random ALU on random registers.
                let ops = [
                    sst_isa::AluOp::Add,
                    sst_isa::AluOp::Sub,
                    sst_isa::AluOp::Xor,
                    sst_isa::AluOp::And,
                    sst_isa::AluOp::Or,
                    sst_isa::AluOp::Sll,
                    sst_isa::AluOp::Mul,
                ];
                let op = ops[r.gen_range(0..ops.len())];
                let rd = Reg::x(r.gen_range(1..15));
                let rs1 = Reg::x(r.gen_range(0..15));
                let rs2 = Reg::x(r.gen_range(0..15));
                if op == sst_isa::AluOp::Sll {
                    a.slli(rd, rs1, r.gen_range(0..8));
                } else {
                    a.alu(op, rd, rs1, rs2);
                }
            }
            3..=4 => {
                // Near store + load (frequent aliasing, forwarding).
                let off = r.gen_range(0..60i64) * 8;
                let src = Reg::x(r.gen_range(1..15));
                let dst = Reg::x(r.gen_range(1..15));
                if r.gen_bool(0.3) {
                    a.sb(src, Reg::x(20), off + r.gen_range(0..8i64));
                } else {
                    a.sd(src, Reg::x(20), off);
                }
                a.ld(dst, Reg::x(20), off);
            }
            5..=6 => {
                // Far load (likely miss) into a live register; mask it into
                // a bounded offset to keep later memory traffic in range.
                let rd = Reg::x(r.gen_range(12..15));
                let idx = Reg::x(r.gen_range(1..12));
                a.andi(Reg::x(15), idx, ((far_nodes - 1) * 8) as i64 & 0xff8);
                a.add(Reg::x(15), Reg::x(15), Reg::x(21));
                a.ld(rd, Reg::x(15), 0);
            }
            7 => {
                // Data-dependent branch over a small hammock.
                let skip = a.label();
                let cond = Reg::x(r.gen_range(1..15));
                a.andi(Reg::x(16), cond, 1);
                a.beq(Reg::x(16), Reg::ZERO, skip);
                a.addi(Reg::x(17), Reg::x(17), 1);
                a.xor(Reg::x(18), Reg::x(17), cond);
                a.bind(skip);
            }
            8 => {
                // Occasional call.
                if let Some(h) = helper {
                    a.call(h);
                }
            }
            _ => {
                // Long-latency op.
                let rd = Reg::x(r.gen_range(1..15));
                let rs = Reg::x(r.gen_range(1..15));
                if r.gen_bool(0.5) {
                    a.mul(rd, rs, Reg::x(r.gen_range(1..15)));
                } else {
                    a.div(rd, rs, Reg::x(r.gen_range(1..15)));
                }
            }
        }
    }
    a.addi(Reg::x(31), Reg::x(31), -1);
    a.bne(Reg::x(31), Reg::ZERO, top);
    a.halt();
    if let Some(h) = helper {
        a.bind(h);
        a.addi(Reg::x(19), Reg::x(19), 3);
        a.xor(Reg::x(18), Reg::x(19), Reg::x(18));
        a.ret();
    }
    a.finish().expect("random program assembles")
}

#[test]
fn random_programs_cosim_on_all_models() {
    for seed in 0..24u64 {
        let p = random_program(seed);
        for model in CoreModel::lineup() {
            let label = model.label();
            // Wrap the raw program as a workload-like run.
            let w = Workload {
                name: "fuzz",
                class: sst_workloads::Class::Micro,
                program: p.clone(),
                skip_insts: 0,
                description: "randomized program",
            };
            System::new(model, &w)
                .run_checked(500_000_000)
                .unwrap_or_else(|e| panic!("seed {seed} on {label}: {e}"));
        }
    }
    // Silence the unused import if Scale goes unused in future edits.
    let _ = Scale::Smoke;
}

#[test]
fn random_programs_with_tiny_structures() {
    use sst_core::SstConfig;
    // Tiny DQ/STB/checkpoint configurations exercise every stall path.
    let configs = [
        SstConfig {
            dq_entries: 2,
            stb_entries: 1,
            ..SstConfig::sst()
        },
        SstConfig {
            dq_entries: 3,
            stb_entries: 2,
            checkpoints: 1,
            ..SstConfig::execute_ahead()
        },
        SstConfig {
            dq_entries: 4,
            stb_entries: 2,
            checkpoints: 6,
            ..SstConfig::sst()
        },
    ];
    for seed in 0..12u64 {
        let p = random_program(seed + 1000);
        for cfg in &configs {
            let label = cfg.label();
            let w = Workload {
                name: "fuzz-tiny",
                class: sst_workloads::Class::Micro,
                program: p.clone(),
                skip_insts: 0,
                description: "randomized program, tiny structures",
            };
            System::new(CoreModel::CustomSst(cfg.clone()), &w)
                .run_checked(500_000_000)
                .unwrap_or_else(|e| panic!("seed {seed} on {label}: {e}"));
        }
    }
}
