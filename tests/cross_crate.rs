//! Cross-crate integration: workloads x models x memory configurations,
//! exercising the whole stack (assembler -> program image -> frontend ->
//! core -> hierarchy -> commit -> checker) through the public APIs only.

use sst_mem::{CacheConfig, MemConfig};
use sst_sim::{geomean, CoreModel, System};
use sst_workloads::{Scale, Workload};

const MAX: u64 = 2_000_000_000;

#[test]
fn full_matrix_smoke_cosim() {
    // Every workload on a representative model subset, fully co-simulated.
    for name in Workload::all_names() {
        for model in [CoreModel::InOrder, CoreModel::Sst, CoreModel::Ooo64] {
            let label = model.label();
            let w = Workload::by_name(name, Scale::Smoke, 21).expect("known");
            let r = System::new(model, &w)
                .run_checked(MAX)
                .unwrap_or_else(|e| panic!("{name} on {label}: {e}"));
            assert!(r.insts > 0);
            assert!(r.measured_ipc() > 0.0, "{name}/{label}");
        }
    }
}

#[test]
fn sst_wins_where_the_paper_says_it_should() {
    // On the commercial suite, SST's per-thread performance should lead
    // the in-order core substantially and stay competitive with the large
    // OoO; on cache-resident compute (matmul/gzip) the OoO should win.
    let mut sst_over_inorder = Vec::new();
    let mut sst_over_ooo = Vec::new();
    for name in Workload::commercial_names() {
        let run = |m: CoreModel| {
            let w = Workload::by_name(name, Scale::Smoke, 33).expect("known");
            System::measure(m, &w, MAX).measured_ipc()
        };
        let sst = run(CoreModel::Sst);
        sst_over_inorder.push(sst / run(CoreModel::InOrder));
        sst_over_ooo.push(sst / run(CoreModel::Ooo128));
    }
    let vs_inorder = geomean(&sst_over_inorder);
    let vs_ooo = geomean(&sst_over_ooo);
    assert!(
        vs_inorder > 1.25,
        "SST vs in-order on commercial: {vs_inorder:.3}"
    );
    assert!(vs_ooo > 0.95, "SST vs ooo-128 on commercial: {vs_ooo:.3}");

    // Compute-bound: the wide OoO may lead.
    let w = Workload::by_name("matmul", Scale::Smoke, 33).unwrap();
    let sst = System::measure(CoreModel::Sst, &w, MAX).measured_ipc();
    let w = Workload::by_name("matmul", Scale::Smoke, 33).unwrap();
    let ooo = System::measure(CoreModel::Ooo128, &w, MAX).measured_ipc();
    assert!(
        ooo > sst * 0.95,
        "wide OoO should at least match SST on matmul: ooo {ooo:.3} sst {sst:.3}"
    );
}

#[test]
fn custom_memory_config_flows_through() {
    // A tiny L2 raises the L2 miss rate; the run must still co-simulate.
    let cfg = MemConfig {
        l2: CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
        },
        ..MemConfig::default()
    };
    let w = Workload::by_name("erp", Scale::Smoke, 5).unwrap();
    let small = System::with_mem(CoreModel::Sst, &w, &cfg)
        .run_checked(MAX)
        .unwrap();
    let w = Workload::by_name("erp", Scale::Smoke, 5).unwrap();
    let big = System::new(CoreModel::Sst, &w).run_checked(MAX).unwrap();
    assert!(
        small.mem.l2.miss_rate() > big.mem.l2.miss_rate(),
        "shrinking the L2 must raise its miss rate"
    );
    assert!(
        small.mem.dram_reads > big.mem.dram_reads,
        "more L2 misses must mean more DRAM fills: {} vs {}",
        small.mem.dram_reads,
        big.mem.dram_reads
    );
}

#[test]
fn mlp_microbenchmarks_bracket_the_mechanism() {
    // chase (MLP 1): SST gains little. mlp8: SST gains a lot.
    let run = |name: &str, m: CoreModel| {
        let w = Workload::by_name(name, Scale::Smoke, 9).expect("known");
        System::measure(m, &w, MAX).measured_ipc()
    };
    let chase_gain = run("chase", CoreModel::Sst) / run("chase", CoreModel::InOrder);
    let mlp8_gain = run("mlp8", CoreModel::Sst) / run("mlp8", CoreModel::InOrder);
    assert!(
        mlp8_gain > chase_gain * 1.5,
        "SST must exploit MLP: chase {chase_gain:.2}, mlp8 {mlp8_gain:.2}"
    );
    assert!(chase_gain > 0.85, "no big loss on pure chase: {chase_gain:.2}");
}
